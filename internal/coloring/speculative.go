package coloring

import (
	"runtime"
	"sync"
	"sync/atomic"

	"bitcolor/internal/bitops"
	"bitcolor/internal/graph"
)

// Speculative implements Gebremedhin–Manne parallel coloring on the host
// CPU: workers first-fit color disjoint vertex blocks concurrently while
// reading neighbor colors without synchronization; a detection pass finds
// adjacent equal pairs; the lower-priority vertex of each pair is
// re-queued. Rounds repeat until conflict-free. This is the standard
// shared-memory algorithm the FPGA design competes with on multicore
// hosts, complementing the single-thread Algorithm 1 baseline.
//
// Returns the result and the number of rounds (1 = no conflicts ever).
func Speculative(g *graph.CSR, maxColors int, workers int) (*Result, int, error) {
	n := g.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n && n > 0 {
		workers = n
	}
	// Shared state uses 32-bit words with atomic access: the algorithm
	// is speculative by design (workers read neighbors mid-flight), and
	// atomics keep that well-defined under the Go memory model.
	shared := make([]uint32, n)
	// Round 1 colors everything; later rounds only the conflicted set.
	pending := make([]graph.VertexID, n)
	for i := range pending {
		pending[i] = graph.VertexID(i)
	}
	rounds := 0
	for len(pending) > 0 {
		rounds++
		if rounds > n+1 {
			// Each round permanently finalizes at least the highest-
			// priority pending vertex, so this cannot trigger; it guards
			// the loop against future regressions.
			panic("coloring: speculative coloring failed to converge")
		}
		// Speculation: workers color disjoint chunks, racing on reads.
		chunk := (len(pending) + workers - 1) / workers
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > len(pending) {
				hi = len(pending)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				state := bitops.NewBitSet(maxColors)
				codec := bitops.NewColorCodec(maxColors)
				for _, v := range pending[lo:hi] {
					state.Reset()
					for _, u := range g.Neighbors(v) {
						codec.Decompress(uint16(atomic.LoadUint32(&shared[u])), state)
					}
					pick, _ := codec.FirstFree(state)
					if pick == 0 {
						errs[w] = ErrPaletteExhausted
						return
					}
					atomic.StoreUint32(&shared[v], uint32(pick))
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, rounds, err
			}
		}
		// Detection: the smaller-indexed endpoint of an equal-colored
		// edge keeps its color, the larger re-queues.
		conflicted := map[graph.VertexID]bool{}
		for _, v := range pending {
			for _, u := range g.Neighbors(v) {
				if shared[u] == shared[v] && u < v {
					conflicted[v] = true
					break
				}
			}
		}
		pending = pending[:0]
		for v := range conflicted {
			pending = append(pending, v)
		}
		// Deterministic round composition despite map iteration: order
		// does not affect the next speculation's outcome distribution,
		// but sorting keeps runs reproducible for tests.
		sortVertexIDs(pending)
	}
	colors := make([]uint16, n)
	for i, c := range shared {
		colors[i] = uint16(c)
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}, rounds, nil
}

// sortVertexIDs is a small insertion/shell sort to avoid pulling sort
// for a hot-loop-free path.
func sortVertexIDs(a []graph.VertexID) {
	for gap := len(a) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(a); i++ {
			for j := i; j >= gap && a[j-gap] > a[j]; j -= gap {
				a[j-gap], a[j] = a[j], a[j-gap]
			}
		}
	}
}
