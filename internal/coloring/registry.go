package coloring

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
)

// This file is the engine registry: the single point where every software
// coloring algorithm is adapted onto one uniform contract. The public API
// (bitcolor.Color/ColorParallel/Pipeline), the CLIs and the experiment
// harness all dispatch through Lookup instead of maintaining their own
// per-engine switches, so adding an engine means writing it and
// registering it here — nothing else in the tree changes.

// EngineFunc is the uniform engine contract. Implementations must:
//   - honor ctx: return ctx.Err() promptly on cancellation (sequential
//     engines poll every ctxStride vertices, parallel ones at block-claim
//     and round boundaries) and never leave shared state poisoned — all
//     mutable state is private to the call, and the input graph is
//     read-only;
//   - read the palette bound from opts.MaxColors (<=0 means
//     MaxColorsDefault) and ignore options that do not apply;
//   - fill the metrics.RunStats fields their subsystems produce and leave
//     the rest zero-valued.
type EngineFunc func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error)

// EngineInfo describes one registered engine.
type EngineInfo struct {
	// Name is the stable CLI/API identifier (lower-case, no spaces).
	Name string
	// Parallel reports whether the engine runs worker goroutines and
	// honors Options.Workers.
	Parallel bool
	// Seeded reports whether the engine is randomized via Options.Seed.
	Seeded bool
	// Stats summarizes which RunStats fields the engine fills ("-" for
	// none) — the source of the README engine table's stats column.
	Stats string
	// Description is a one-line summary for docs and CLI usage strings.
	Description string
	// Run executes the engine.
	Run EngineFunc
	// Demand reports how many pool slots a run with these options will
	// occupy (its goroutine count). Nil defaults to the resolved worker
	// count for parallel engines and 1 otherwise — only engines whose
	// concurrency is not Workers (the sharded engine runs shards ×
	// workers goroutines) need to set it.
	Demand func(g *graph.CSR, opts Options) int
	// Grant adapts the options when the pool granted fewer slots than
	// Demand asked for (the pool cap is smaller than the request). Nil
	// defaults to Workers = granted for parallel engines.
	Grant func(opts Options, granted int) Options
}

// registry holds engines in registration order; the order is part of the
// contract — bitcolor.Engine constants index into it, and a test enforces
// the correspondence.
var (
	registry      []EngineInfo
	registryIndex = map[string]int{}
)

// Register adds an engine to the registry. It panics on a duplicate or
// empty name or a nil Run — registration happens in init, so a bad entry
// is a programming error that should fail loudly at startup. Every
// engine is wrapped by the instrumentation decorator at registration,
// so tracing and metric folding are uniform across engines without any
// per-engine code.
func Register(info EngineInfo) {
	if info.Name == "" || info.Run == nil {
		panic("coloring: Register needs a name and a Run func")
	}
	if _, dup := registryIndex[info.Name]; dup {
		panic(fmt.Sprintf("coloring: engine %q registered twice", info.Name))
	}
	// Admission wraps instrumentation so pool queue time is never billed
	// to the engine span or its duration metrics — a queued run has not
	// started yet.
	info.Run = admitted(info, instrument(info.Name, info.Run))
	registryIndex[info.Name] = len(registry)
	registry = append(registry, info)
}

// admitted is the pool-admission and run-registration decorator: with
// Options.Pool set, the run blocks (FIFO) until the engine's slot
// demand is free, runs, and releases. A pool smaller than the demand
// grants what it has and the run shrinks its worker count to match, so
// no request ever deadlocks on an oversized ask.
//
// When an observer is present (Options.Obs or the context) the run is
// additionally registered in the live run registry for the whole
// admit→run lifecycle: /debug/runs shows it as "queued" while it waits
// for slots and "running" with live progress after, and Finish
// deregisters it into the flight-recorder ring — strictly before the
// pool slots are released, so a recycled Scratch can never be scraped
// under the old run's identity. Observer-less runs skip registration
// entirely; without a pool either, the only cost is two nil checks.
func admitted(info EngineInfo, run EngineFunc) EngineFunc {
	return func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
		o := opts.Obs
		if o == nil {
			o = obs.FromContext(ctx)
		}
		p := opts.Pool
		if o == nil && p == nil {
			return run(ctx, g, opts)
		}
		opts.Obs = o // instrument reuses the resolution
		rec := obs.Runs().Begin(ctx, o, info.Name, int64(g.NumVertices()), g.NumEdges())
		opts.Run = rec
		if p == nil {
			res, st, err := run(ctx, g, opts)
			rec.Finish(numColors(res), st, err)
			return res, st, err
		}
		want := 1
		switch {
		case info.Demand != nil:
			want = info.Demand(g, opts)
		case info.Parallel:
			want = resolveWorkers(opts.Workers, g.NumVertices())
		}
		rec.Queued(want)
		var queuedAt time.Time
		if rec != nil {
			queuedAt = time.Now()
		}
		granted, err := p.AcquireTagged(ctx, want, info.Name)
		if err != nil {
			rec.Finish(0, metrics.RunStats{}, err)
			return nil, metrics.RunStats{}, err
		}
		defer p.Release(granted)
		if rec != nil {
			rec.Admitted(want, granted, time.Since(queuedAt), p.Stats)
		}
		if granted < want {
			if info.Grant != nil {
				opts = info.Grant(opts, granted)
			} else if info.Parallel {
				opts.Workers = granted
			}
		}
		res, st, err := run(ctx, g, opts)
		rec.Finish(numColors(res), st, err)
		return res, st, err
	}
}

// numColors extracts the color count from a possibly-nil result.
func numColors(res *Result) int {
	if res == nil {
		return 0
	}
	return res.NumColors
}

// instrument is the uniform EngineFunc decorator: it resolves the
// observer (explicit Options.Obs first, then the context), opens the
// engine span, hands both to the engine via Options, and folds the
// run's statistics into the observer's metric families afterwards.
// Without an observer the only cost is one nil check per run.
func instrument(name string, run EngineFunc) EngineFunc {
	return func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
		o := opts.Obs
		if o == nil {
			o = obs.FromContext(ctx)
		}
		if o == nil {
			return run(ctx, g, opts)
		}
		opts.Obs = o
		sp := o.StartSpan("engine/"+name).
			Attr("vertices", int64(g.NumVertices())).
			Attr("edges", g.NumEdges())
		opts.Span = sp
		start := time.Now()
		res, st, err := run(ctx, g, opts)
		d := time.Since(start)
		sp.Attr("workers", int64(st.Workers)).
			Attr("rounds", int64(st.Rounds)).
			Attr("conflicts_found", st.ConflictsFound).
			Attr("conflicts_repaired", st.ConflictsRepaired)
		colors := 0
		if res != nil {
			colors = res.NumColors
			sp.Attr("colors", int64(colors))
		}
		if err != nil {
			sp.Attr("error", err.Error())
		}
		sp.End()
		o.RecordRun(name, colors, d, st, err)
		return res, st, err
	}
}

// Lookup resolves an engine by name.
func Lookup(name string) (EngineInfo, bool) {
	i, ok := registryIndex[name]
	if !ok {
		return EngineInfo{}, false
	}
	return registry[i], true
}

// LookupIndex resolves an engine by registration index (the value of the
// corresponding bitcolor.Engine constant).
func LookupIndex(i int) (EngineInfo, bool) {
	if i < 0 || i >= len(registry) {
		return EngineInfo{}, false
	}
	return registry[i], true
}

// Index returns the registration index for a name (-1 if unknown).
func Index(name string) int {
	if i, ok := registryIndex[name]; ok {
		return i
	}
	return -1
}

// Engines returns a copy of the registry in registration order.
func Engines() []EngineInfo {
	out := make([]EngineInfo, len(registry))
	copy(out, registry)
	return out
}

// EngineNames returns the registered names in registration order.
func EngineNames() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name
	}
	return names
}

// resolveWorkers mirrors the parallel engines' worker-count defaulting so
// adapters can report the effective count in RunStats.
func resolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n && n > 0 {
		workers = n
	}
	return workers
}

func init() {
	// Registration order mirrors the bitcolor.Engine iota order; the
	// api-level round-trip test enforces the correspondence.
	Register(EngineInfo{
		Name:        "greedy",
		Stats:       "-",
		Description: "paper Algorithm 1: first-fit with flag-array color scan",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, err := Greedy(ctx, g, opts.maxColors())
			return res, metrics.RunStats{}, err
		},
	})
	Register(EngineInfo{
		Name:        "bitwise",
		Stats:       "-",
		Description: "paper Algorithm 2: bit-vector state, (^s)&(s+1) first-fit, uncolored-vertex pruning",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, err := BitwiseGreedyScratch(ctx, g, opts.maxColors(), true, opts.Scratch)
			return res, metrics.RunStats{}, err
		},
	})
	Register(EngineInfo{
		Name:        "dsatur",
		Stats:       "-",
		Description: "Brélaz saturation-degree heuristic",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, err := DSATUR(ctx, g, opts.maxColors())
			return res, metrics.RunStats{}, err
		},
	})
	Register(EngineInfo{
		Name:        "welshpowell",
		Stats:       "-",
		Description: "descending-degree greedy",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, err := WelshPowell(ctx, g, opts.maxColors())
			return res, metrics.RunStats{}, err
		},
	})
	Register(EngineInfo{
		Name:        "smallestlast",
		Stats:       "-",
		Description: "degeneracy-order greedy",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, err := SmallestLast(ctx, g, opts.maxColors())
			return res, metrics.RunStats{}, err
		},
	})
	Register(EngineInfo{
		Name:        "jonesplassmann",
		Parallel:    true,
		Seeded:      true,
		Stats:       "workers, rounds",
		Description: "random-priority independent sets (the GPU baseline's algorithm)",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, rounds, err := JonesPlassmann(ctx, g, opts.maxColors(), opts.Seed, opts.Workers)
			st := metrics.RunStats{Workers: resolveWorkers(opts.Workers, g.NumVertices()), Rounds: rounds}
			return res, st, err
		},
	})
	Register(EngineInfo{
		Name:        "lubymis",
		Seeded:      true,
		Stats:       "rounds",
		Description: "one maximal independent set per color",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, rounds, err := LubyMIS(ctx, g, opts.maxColors(), opts.Seed)
			return res, metrics.RunStats{Rounds: rounds}, err
		},
	})
	Register(EngineInfo{
		Name:        "rlf",
		Stats:       "-",
		Description: "Recursive Largest First (best quality, quadratic)",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			res, err := RLF(ctx, g, opts.maxColors())
			return res, metrics.RunStats{}, err
		},
	})
	Register(EngineInfo{
		Name:        "speculative",
		Parallel:    true,
		Stats:       "workers, rounds, conflicts, work split, gather",
		Description: "Gebremedhin–Manne speculation with re-round conflict repair",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			return SpeculativeOpts(ctx, g, opts.maxColors(), opts)
		},
	})
	Register(EngineInfo{
		Name:        "parallelbitwise",
		Parallel:    true,
		Stats:       "workers, rounds, conflicts, work split, gather",
		Description: "bit-wise first-fit fused into speculative parallelism with in-place repair",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			return ParallelBitwiseOpts(ctx, g, opts.maxColors(), opts)
		},
	})
	Register(EngineInfo{
		Name:        "dct",
		Parallel:    true,
		Stats:       "workers, deferred, work split, gather",
		Description: "single-pass owner-computes bit-wise coloring with DCT color forwarding — deterministic, identical to greedy at any worker count",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			return DCTOpts(ctx, g, opts.maxColors(), opts)
		},
	})
	Register(EngineInfo{
		Name:        "sharded",
		Parallel:    true,
		Stats:       "workers, shards, boundary, deferred, work split, gather",
		Description: "partitioned multi-card DCT: per-shard interior coloring plus one boundary-frontier phase — deterministic, identical to greedy at any shard and worker count",
		Run: func(ctx context.Context, g *graph.CSR, opts Options) (*Result, metrics.RunStats, error) {
			return ShardedOpts(ctx, g, opts.maxColors(), opts)
		},
		// The interior phase runs shards × workers goroutines, so the
		// pool demand is the product, and a short grant shrinks the
		// per-shard worker count (never the shard count — partitioning
		// is part of the result's identity).
		Demand: func(g *graph.CSR, opts Options) int {
			n := g.NumVertices()
			if opts.OutOfCore && opts.ShardFile != nil {
				// A streamed run never has more than its residency bound
				// of shards active, so that — not the shard count — is
				// the concurrency it asks the pool for.
				return resolveWorkers(opts.Workers, n) * streamResidency(opts)
			}
			shards := opts.Shards
			if shards <= 0 {
				shards = 1
			}
			if n > 0 && shards > n {
				shards = n
			}
			return resolveWorkers(opts.Workers, n) * shards
		},
		Grant: func(opts Options, granted int) Options {
			if opts.OutOfCore && opts.ShardFile != nil {
				opts.Workers = max(1, granted/streamResidency(opts))
				return opts
			}
			shards := opts.Shards
			if shards <= 0 {
				shards = 1
			}
			opts.Workers = max(1, granted/shards)
			return opts
		},
	})
}
