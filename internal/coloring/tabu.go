package coloring

import (
	"math/rand"

	"bitcolor/internal/graph"
)

// TabuCol implements Hertz & de Werra's tabu search for k-coloring: start
// from a (possibly improper) k-assignment, repeatedly move the endpoint
// of a conflicting edge to the color that most reduces conflicts, with a
// tabu list forbidding immediate reversals. It either finds a proper
// k-coloring or gives up after maxIters moves.
//
// TabuColReduce wraps it into a color-count minimizer: take a proper
// coloring, repeatedly try k = current−1 with TabuCol.
func TabuCol(g *graph.CSR, k int, seed int64, maxIters int) (*Result, bool) {
	n := g.NumVertices()
	if k <= 0 {
		return nil, false
	}
	rng := rand.New(rand.NewSource(seed))
	colors := make([]uint16, n)
	for v := range colors {
		colors[v] = uint16(rng.Intn(k) + 1)
	}
	// conflicts[v] = neighbors sharing v's color.
	conflicts := make([]int, n)
	total := 0
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if colors[u] == colors[v] {
				conflicts[v]++
				if graph.VertexID(v) < u {
					total++
				}
			}
		}
	}
	if total == 0 {
		return &Result{Colors: colors, NumColors: countColors(colors)}, true
	}
	// tabu[v][c] = iteration until which assigning color c to v is tabu.
	tabu := make([][]int, n)
	for v := range tabu {
		tabu[v] = make([]int, k+1)
	}
	for iter := 1; iter <= maxIters && total > 0; iter++ {
		// Pick a random conflicted vertex.
		v := -1
		// Reservoir-sample among conflicted vertices.
		seen := 0
		for i := 0; i < n; i++ {
			if conflicts[i] > 0 {
				seen++
				if rng.Intn(seen) == 0 {
					v = i
				}
			}
		}
		if v == -1 {
			break
		}
		// Count each color's conflicts at v.
		counts := make([]int, k+1)
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			counts[colors[u]]++
		}
		cur := colors[v]
		best, bestCount := 0, 1<<30
		for c := 1; c <= k; c++ {
			if uint16(c) == cur {
				continue
			}
			allowed := tabu[v][c] < iter ||
				counts[c] == 0 // aspiration: a zero-conflict move is always allowed
			if !allowed {
				continue
			}
			if counts[c] < bestCount || (counts[c] == bestCount && rng.Intn(2) == 0) {
				best, bestCount = c, counts[c]
			}
		}
		if best == 0 {
			continue // everything tabu this iteration
		}
		// Apply the move and update conflict bookkeeping.
		delta := bestCount - counts[cur]
		total += delta
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			switch colors[u] {
			case cur:
				conflicts[u]--
			case uint16(best):
				conflicts[u]++
			}
		}
		conflicts[v] = bestCount
		// Tabu the reversal for a dynamic tenure.
		tabu[v][cur] = iter + 7 + rng.Intn(5) + total
		colors[v] = uint16(best)
	}
	if total > 0 {
		return nil, false
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}, true
}

// TabuColReduce minimizes colors starting from a proper coloring: it
// repeatedly attempts k−1 colors with TabuCol until a attempt fails.
// Never returns a worse (or improper) result than the input.
func TabuColReduce(g *graph.CSR, initial *Result, seed int64, maxItersPerK int) *Result {
	best := initial
	for k := best.NumColors - 1; k >= 1; k-- {
		res, ok := TabuCol(g, k, seed+int64(k), maxItersPerK)
		if !ok {
			break
		}
		best = res
	}
	return best
}
