package coloring

import (
	"context"
	"runtime"
	"sort"
	"sync/atomic"

	"bitcolor/internal/exec"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
)

// ParallelBitwise fuses the paper's bit-wise color-state determination
// (Algorithm 2: first free color = (^state)&(state+1) over a BitSet) into
// a speculative shared-memory parallel framework — the fastest host-side
// formulation this repo implements, and the multicore reference number
// the accelerator's speedup claims are measured against.
//
// Three design points distinguish it from Speculative (classic
// Gebremedhin–Manne with a flag-array scan):
//
//   - Bit-wise Stage 1. Each worker keeps one reusable BitSet as its
//     color-state register; the forbidden set accumulates by Bit-OR over
//     neighbor colors and the first free color falls out of one
//     (^state)&(state+1) per 64-bit word instead of an O(colors) scan.
//
//   - Degree-aware dynamic dispatch. Vertices are processed in
//     descending-degree order (the software mirror of the paper's per-PE
//     HDV FIFOs) and workers claim fixed-size index blocks from a shared
//     atomic cursor. Mega-degree vertices at the head get spread across
//     whoever is free, so a handful of hubs cannot serialize a static
//     chunk's tail — the load imbalance that hurts classic GM on the
//     power-law datasets of Table 3.
//
//   - Rokos-style in-place repair. The detection sweep re-colors the
//     losing endpoint of an equal-colored edge immediately (reading live
//     neighbor colors) instead of queueing a full re-speculation round,
//     so each sweep both finds and fixes conflicts ("detect and recolor
//     in place"; Rokos et al., and the optimistic bit-set variant of
//     Taş & Kaya's "Greed is Good").
//
// The steady-state loops are allocation-free: all scratch (bit sets,
// pending buffers, per-worker repair queues, the pending-epoch array) is
// allocated once up front and reused across sweeps.
//
// Returns the verified-proper result and per-run parallel statistics.
func ParallelBitwise(ctx context.Context, g *graph.CSR, maxColors int, workers int) (*Result, metrics.ParallelStats, error) {
	return ParallelBitwiseOpts(ctx, g, maxColors, Options{MaxColors: maxColors, Workers: workers})
}

// ParallelBitwiseOpts is ParallelBitwise with the full option set: worker
// count, the blocked color-gather toggle (on by default — the paper's
// MGR+HDC memory path in software) and the hot-tier threshold. On a
// DBG-reordered, edge-sorted graph the gather additionally applies PUV
// tail-skipping during speculation: adjacency is sorted ascending and
// processing order is the vertex index, so the first neighbor index above
// the current vertex starts the still-uncolored tail and the scan stops
// there. Repair sweeps always see every neighbor.
//
// Cancellation is polled at block-claim granularity (one ctx.Err() per
// exec.DispatchBlock vertices — the per-edge hot path never sees it) and at
// sweep boundaries; on cancellation the call returns ctx.Err() and no
// result. All mutable state is private to the call, so an abandoned run
// poisons nothing.
func ParallelBitwiseOpts(ctx context.Context, g *graph.CSR, maxColors int, opts Options) (*Result, metrics.ParallelStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, metrics.ParallelStats{}, err
	}
	n := g.NumVertices()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n && n > 0 {
		workers = n
	}
	sc := opts.Scratch
	if !sc.fits("parallelbitwise", workers) {
		sc = nil
	}
	// Per-worker hot-path counters live in cache-line-padded shards; the
	// fold into RunStats happens once, after the worker goroutines join.
	// Handing them to the run record arms their atomic live mirrors so
	// /debug/runs can read mid-run progress (nil-safe no-op otherwise).
	ss := sc.shardSet(workers)
	opts.Run.AttachShards(ss)
	st := metrics.ParallelStats{Workers: workers}
	useGather, gatherAuto := gatherDecision(g, opts)
	foldStats := func() {
		st.VerticesPerWorker = ss.PerWorkerInto(obs.CtrVertices, sc.perWorkerBuf(0, workers))
		st.BlocksPerWorker = ss.PerWorkerInto(obs.CtrBlocks, sc.perWorkerBuf(1, workers))
		st.ConflictsFound = ss.Total(obs.CtrConflictsFound)
		st.ConflictsRepaired = ss.Total(obs.CtrConflictsRepaired)
		st.Gather = metrics.GatherStats{
			HotReads:       ss.Total(obs.CtrHotReads),
			MergedReads:    ss.Total(obs.CtrMergedReads),
			ColdBlockLoads: ss.Total(obs.CtrColdBlockLoads),
			PrunedTail:     ss.Total(obs.CtrPrunedTail),
			AutoDisabled:   gatherAuto,
		}
	}
	if n == 0 {
		foldStats()
		return &Result{Colors: nil, NumColors: 0}, st, nil
	}
	// esp is the enclosing engine span (nil without an observer; every
	// span method is a no-op then). Spans are touched only at phase and
	// sweep boundaries, never inside the per-block or per-edge loops.
	esp := opts.Span

	// Colors live in 32-bit words accessed atomically: speculation reads
	// neighbor colors mid-flight by design, and atomics keep those races
	// well-defined under the Go memory model.
	shared := sc.sharedBuf(n)

	// Descending-degree processing order: on a DBG-preprocessed graph this
	// is the identity (detected in O(n) to skip the sort), on raw graphs
	// it reproduces the paper's high-degree-first dispatch. Ties break by
	// index so the order is deterministic.
	order := sc.orderBuf(n)
	sorted := true
	for i := range order {
		order[i] = graph.VertexID(i)
		if i > 0 && g.Degree(graph.VertexID(i)) > g.Degree(graph.VertexID(i-1)) {
			sorted = false
		}
	}
	if !sorted {
		sort.SliceStable(order, func(i, j int) bool {
			return g.Degree(order[i]) > g.Degree(order[j])
		})
	}
	// rank[v] is v's position in the processing order, for the
	// speculation-phase uncolored-vertex prune (§3.2.2 applied to the
	// parallel setting): a neighbor scheduled after v is almost always
	// still uncolored, so skipping it loses nothing in the common case —
	// the rare racing exception surfaces as a conflict and is repaired.
	rank := sc.rankBuf(n)
	for i, v := range order {
		rank[v] = int32(i)
	}

	// PUV tail break: when the processing order is the vertex index (DBG
	// invariant) and adjacency lists are sorted ascending, the pruned
	// neighbors form the list's tail, so the prune is a break instead of a
	// per-neighbor rank probe — the software rendering of the paper's
	// "stop at the first destination above the current vertex".
	puv := useGather && sorted && g.EdgesSorted()

	// Per-worker reusable scratch: one color-state BitSet + codec, one
	// gather view, and one repair queue each (pooled across runs when a
	// Scratch backs the call). Nothing below allocates in steady state.
	ws := make([]*workerScratch, workers)
	for w := range ws {
		s := sc.workerAt(w, maxColors)
		sh := ss.Shard(w)
		s.sh = sh
		s.ga.init(shared, opts.HotVertices, sh)
		ws[w] = s
	}
	if useGather {
		st.HotThreshold = ws[0].ga.vt
	}

	// firstFit assigns the lowest color not used by any neighbor of v,
	// reading neighbor colors atomically. prune skips neighbors scheduled
	// after v (speculation only — repair must see every neighbor).
	// Returns false on palette exhaustion.
	firstFit := func(s *workerScratch, v graph.VertexID, prune bool) bool {
		s.state.Reset()
		adj := g.Neighbors(v)
		switch {
		case prune && puv:
			// Blocked gather over the colored prefix of the sorted list;
			// everything past the first index above v is the uncolored tail.
			for i, u := range adj {
				if u > v {
					s.sh.Add(obs.CtrPrunedTail, int64(len(adj)-i))
					break
				}
				s.state.OrColorNum(s.ga.load(u))
			}
		case useGather:
			rv := rank[v]
			for _, u := range adj {
				if prune && rank[u] > rv {
					continue
				}
				s.state.OrColorNum(s.ga.load(u))
			}
		default:
			// Ablation baseline: naive per-neighbor random access through
			// the codec table.
			rv := rank[v]
			for _, u := range adj {
				if prune && rank[u] > rv {
					continue
				}
				s.codec.Decompress(uint16(atomic.LoadUint32(&shared[u])), s.state)
			}
		}
		pick, _ := s.codec.FirstFree(s.state)
		if pick == 0 {
			s.err = ErrPaletteExhausted
			return false
		}
		atomic.StoreUint32(&shared[v], uint32(pick))
		return true
	}

	// Speculation: every vertex colored once, workers pulling
	// degree-sorted blocks from the shared cursor.
	ssp := esp.Child("speculate").Attr("vertices", int64(n))
	var cur exec.BlockCursor
	cur.Reset(n)
	specErr := exec.Blocks(ctx, workers, &cur, func(w, lo, hi int) error {
		s := ws[w]
		s.sh.Inc(obs.CtrBlocks)
		s.sh.Add(obs.CtrVertices, int64(hi-lo))
		for _, v := range order[lo:hi] {
			if !firstFit(s, v, true) {
				return s.err
			}
		}
		s.sh.PublishAll() // live-progress checkpoint, once per block
		return nil
	})
	ssp.Attr("blocks", ss.Total(obs.CtrBlocks)).End()
	if specErr != nil {
		foldStats()
		return nil, st, specErr
	}

	// Detection + in-place repair sweeps. pendingEpoch[v] == sweep marks v
	// as "re-colored last sweep" (sweep 1: everything). A conflict edge is
	// resolved by re-coloring exactly one endpoint: if only one endpoint
	// is pending it re-colors regardless of index (its stable neighbor
	// will never be re-examined); between two pending endpoints the
	// higher-indexed one loses, so the lowest-indexed vertex of any
	// conflicting cluster keeps its color and every sweep makes progress.
	// A single worker speculates sequentially and exactly: no racing
	// reads, no conflicts possible, so the detection sweep would only
	// re-traverse every edge to find nothing. Report the one
	// conflict-free round directly and skip detection.
	var (
		pending      []graph.VertexID
		pendingEpoch []uint32
	)
	if workers == 1 {
		st.Rounds = 1
		opts.Run.SetRound(1)
		// The single conflict-free round still gets its span so the
		// per-round record count always matches RunStats.Rounds.
		esp.Child("round").Attr("round", 1).Attr("pending", int64(n)).
			Attr("conflicts_found", int64(0)).Attr("recolored", int64(0)).End()
	} else {
		pending = sc.pendingBuf(n)
		copy(pending, order)
		pendingEpoch = sc.epochBuf(n)
	}
	sweep := uint32(0)
	for len(pending) > 0 {
		sweep++
		st.Rounds++
		opts.Run.SetRound(st.Rounds)
		if st.Rounds > n+1 {
			// Each sweep finalizes at least the lowest-indexed vertex of
			// every conflicting cluster; this guards future regressions.
			panic("coloring: parallel bitwise coloring failed to converge")
		}
		// Round telemetry: the snapshot/delta work runs only with a live
		// observer; sweeps under a nil observer skip it entirely.
		var (
			rsp                       *obs.Span
			foundBefore, repairBefore int64
			blocksBefore              []int64
		)
		if esp != nil {
			foundBefore = ss.Total(obs.CtrConflictsFound)
			repairBefore = ss.Total(obs.CtrConflictsRepaired)
			blocksBefore = ss.PerWorker(obs.CtrBlocks)
			rsp = esp.Child("round").Attr("round", int64(st.Rounds)).
				Attr("pending", int64(len(pending)))
		}
		for _, v := range pending {
			pendingEpoch[v] = sweep
		}
		cur.Reset(len(pending))
		// The repair queues are per-sweep and a worker can run many blocks
		// per sweep, so the reset happens here, not inside the block body.
		for _, s := range ws {
			s.next = s.next[:0]
		}
		sweepErr := exec.Blocks(ctx, workers, &cur, func(w, lo, hi int) error {
			s := ws[w]
			s.sh.Inc(obs.CtrBlocks)
			for _, v := range pending[lo:hi] {
				cv := atomic.LoadUint32(&shared[v])
				lost := false
				for _, u := range g.Neighbors(v) {
					if atomic.LoadUint32(&shared[u]) != cv {
						continue
					}
					if pendingEpoch[u] == sweep && u > v {
						continue // u is pending and loses; its worker repairs it
					}
					lost = true
					s.sh.Inc(obs.CtrConflictsFound)
				}
				if !lost {
					continue
				}
				s.sh.Inc(obs.CtrConflictsRepaired)
				if !firstFit(s, v, false) {
					return s.err
				}
				s.next = append(s.next, v)
			}
			s.sh.PublishAll() // live-progress checkpoint, once per block
			return nil
		})
		// Collect the re-colored vertices as the next sweep's pending set.
		pending = pending[:0]
		if sweepErr == nil {
			for _, s := range ws {
				pending = append(pending, s.next...)
			}
		}
		if rsp != nil {
			claims := ss.PerWorker(obs.CtrBlocks)
			var total, steals int64
			for w := range claims {
				claims[w] -= blocksBefore[w]
				total += claims[w]
			}
			fair := (total + int64(workers) - 1) / int64(workers)
			for _, b := range claims {
				if b > fair {
					steals += b - fair
				}
			}
			rsp.Attr("conflicts_found", ss.Total(obs.CtrConflictsFound)-foundBefore).
				Attr("recolored", ss.Total(obs.CtrConflictsRepaired)-repairBefore).
				Attr("blocks_per_worker", claims).
				Attr("steals", steals)
			if sweepErr != nil {
				rsp.Attr("cancelled", true)
			}
			rsp.End()
		}
		if sweepErr != nil {
			foldStats()
			return nil, st, sweepErr
		}
		// Deterministic sweep composition despite racy block claims:
		// sorting keeps the detection order reproducible for tests.
		sortVertexIDs(pending)
	}
	foldStats()

	colors := sc.colorsBuf(n)
	for i, c := range shared {
		colors[i] = uint16(c)
	}
	return sc.result(colors, sc.distinctColors(colors), OpStats{}), st, nil
}
