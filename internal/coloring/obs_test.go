package coloring

import (
	"context"
	"strconv"
	"testing"

	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
)

// lookupRun resolves an engine's decorated Run through the registry —
// the same path the public API takes, so the test exercises the
// instrumentation decorator, not the raw engine.
func lookupRun(t *testing.T, name string) EngineFunc {
	t.Helper()
	info, ok := Lookup(name)
	if !ok {
		t.Fatalf("engine %q not registered", name)
	}
	return info.Run
}

// TestRoundSpansMatchRunStats pins the ISSUE acceptance criterion: for
// each speculative engine, the observer records exactly one "round"
// span per RunStats round.
func TestRoundSpansMatchRunStats(t *testing.T) {
	for _, name := range []string{"speculative", "parallelbitwise", "dct"} {
		for _, workers := range []int{1, 4} {
			t.Run(name, func(t *testing.T) {
				g := randomGraph(t, 400, 3000, 11)
				o := obs.New()
				ctx := obs.NewContext(context.Background(), o)
				res, st, err := lookupRun(t, name)(ctx, g, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if err := Verify(g, res.Colors); err != nil {
					t.Fatal(err)
				}
				if st.Rounds < 1 {
					t.Fatalf("Rounds = %d", st.Rounds)
				}
				if got := o.SpanCount("round"); got != st.Rounds {
					t.Fatalf("%s workers=%d: %d round spans, RunStats.Rounds = %d",
						name, workers, got, st.Rounds)
				}
				if o.SpanCount("engine/"+name) != 1 {
					t.Fatalf("engine span count = %d", o.SpanCount("engine/"+name))
				}
			})
		}
	}
}

// TestInstrumentFoldsRunIntoFamilies checks the decorator's RecordRun
// wiring end to end: after a run through the registry, the observer's
// families reflect the returned RunStats.
func TestInstrumentFoldsRunIntoFamilies(t *testing.T) {
	g := randomGraph(t, 300, 2500, 12)
	o := obs.New()
	ctx := obs.NewContext(context.Background(), o)
	res, st, err := lookupRun(t, "parallelbitwise")(ctx, g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := o.Metrics()
	if v := r.Counter("bitcolor_engine_runs_total").Value("parallelbitwise"); v != 1 {
		t.Fatalf("runs counter = %d", v)
	}
	if v := r.Counter("bitcolor_rounds_total").Value("parallelbitwise"); v != int64(st.Rounds) {
		t.Fatalf("rounds counter = %d, RunStats %d", v, st.Rounds)
	}
	gather := st.Gather
	if v := r.Counter("bitcolor_gather_hot_reads_total").Value(""); v != gather.HotReads {
		t.Fatalf("hot reads counter = %d, RunStats %d", v, gather.HotReads)
	}
	if v := r.Counter("bitcolor_gather_pruned_tail_total").Value(""); v != gather.PrunedTail {
		t.Fatalf("pruned counter = %d, RunStats %d", v, gather.PrunedTail)
	}
	var wv int64
	for w := 0; w < st.Workers; w++ {
		wv += r.Counter("bitcolor_worker_vertices_total").Value(strconv.Itoa(w))
	}
	if wv != st.TotalVertices() {
		t.Fatalf("worker vertices folded = %d, RunStats %d", wv, st.TotalVertices())
	}
	if res.NumColors <= 0 {
		t.Fatal("no colors")
	}
}

// TestEngineOptionObserver checks the Options.Obs path (explicit
// observer, no context).
func TestEngineOptionObserver(t *testing.T) {
	g := randomGraph(t, 200, 1200, 13)
	o := obs.New()
	_, st, err := lookupRun(t, "speculative")(context.Background(), g, Options{Workers: 2, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	if got := o.SpanCount("round"); got != st.Rounds {
		t.Fatalf("explicit Obs: %d round spans, Rounds %d", got, st.Rounds)
	}
}

// TestNoObserverNoSpans guards the nil path: without an observer the
// engines must not record anything or fail.
func TestNoObserverNoSpans(t *testing.T) {
	g := randomGraph(t, 200, 1200, 14)
	res, st, err := lookupRun(t, "parallelbitwise")(context.Background(), g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || st.Rounds < 1 {
		t.Fatalf("run without observer degraded: %v %+v", res, st)
	}
}

// TestDCTFamiliesFold checks the DCT-specific observability families
// end to end: a multi-worker run over a path graph (which forces
// deferrals) must fold RunStats.Deferred/DeferRetries/SpinWaits into the
// counters, set the ring-occupancy gauge to the ring peak, and record
// every park's wait in the forwarding-latency histogram.
func TestDCTFamiliesFold(t *testing.T) {
	edges := make([]graph.Edge, 9999)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)}
	}
	g, err := graph.FromEdgeList(10000, edges)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	var st metrics.RunStats
	// Deferrals are scheduling-dependent; repeat until one lands (the
	// counters accumulate across runs, the gauge tracks the last run).
	for i := 0; i < 20; i++ {
		_, s, err := lookupRun(t, "dct")(obs.NewContext(context.Background(), o), g, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		st.Deferred += s.Deferred
		st.DeferRetries += s.DeferRetries
		st.SpinWaits += s.SpinWaits
		if s.ForwardRingPeak > st.ForwardRingPeak {
			st.ForwardRingPeak = s.ForwardRingPeak
		}
		if st.Deferred > 0 {
			break
		}
	}
	if st.Deferred == 0 {
		t.Fatal("multi-worker path runs never deferred; cannot exercise the families")
	}
	r := o.Metrics()
	if v := r.Counter("bitcolor_dct_deferred_total").Value(""); v != st.Deferred {
		t.Fatalf("deferred counter = %d, RunStats %d", v, st.Deferred)
	}
	if v := r.Counter("bitcolor_dct_defer_retries_total").Value(""); v != st.DeferRetries {
		t.Fatalf("retries counter = %d, RunStats %d", v, st.DeferRetries)
	}
	if v := r.Counter("bitcolor_dct_spin_waits_total").Value(""); v != st.SpinWaits {
		t.Fatalf("spin counter = %d, RunStats %d", v, st.SpinWaits)
	}
	snap := r.Snapshot()
	gauge, _ := snap["bitcolor_dct_ring_occupancy"].(map[string]any)
	if len(gauge) == 0 {
		t.Fatal("ring-occupancy gauge never set despite deferrals")
	}
	hist, _ := snap["bitcolor_dct_forward_wait_seconds"].(map[string]any)
	hv, _ := hist["value"].(map[string]any)
	count, _ := hv["count"].(int64)
	if count == 0 {
		t.Fatal("forwarding-latency histogram recorded no samples despite deferrals")
	}
	if count > st.DeferRetries {
		t.Fatalf("histogram samples %d exceed replay attempts %d", count, st.DeferRetries)
	}
}
