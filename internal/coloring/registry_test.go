package coloring

import (
	"context"
	"errors"
	"hash/fnv"
	"testing"
	"time"

	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
)

// graphChecksum fingerprints the CSR so cancellation tests can assert the
// engines never mutate their input.
func graphChecksum(g *graph.CSR) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(x uint64) {
		for i := range b {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, o := range g.Offsets {
		put(uint64(o))
	}
	for _, e := range g.Edges {
		put(uint64(e))
	}
	return h.Sum64()
}

func TestRegistryRoundTrip(t *testing.T) {
	engines := Engines()
	if len(engines) == 0 {
		t.Fatal("registry is empty")
	}
	names := EngineNames()
	if len(names) != len(engines) {
		t.Fatalf("EngineNames %d vs Engines %d", len(names), len(engines))
	}
	for i, info := range engines {
		if info.Name != names[i] {
			t.Fatalf("order mismatch at %d: %q vs %q", i, info.Name, names[i])
		}
		if info.Run == nil {
			t.Fatalf("%s: nil Run", info.Name)
		}
		if info.Description == "" || info.Stats == "" {
			t.Fatalf("%s: missing metadata", info.Name)
		}
		byName, ok := Lookup(info.Name)
		if !ok || byName.Name != info.Name {
			t.Fatalf("Lookup(%q) failed", info.Name)
		}
		byIdx, ok := LookupIndex(i)
		if !ok || byIdx.Name != info.Name {
			t.Fatalf("LookupIndex(%d) = %q, want %q", i, byIdx.Name, info.Name)
		}
		if Index(info.Name) != i {
			t.Fatalf("Index(%q) = %d, want %d", info.Name, Index(info.Name), i)
		}
	}
	if _, ok := Lookup("no-such-engine"); ok {
		t.Fatal("Lookup accepted an unknown name")
	}
	if _, ok := LookupIndex(len(engines)); ok {
		t.Fatal("LookupIndex accepted an out-of-range index")
	}
	if _, ok := LookupIndex(-1); ok {
		t.Fatal("LookupIndex accepted a negative index")
	}
	if Index("no-such-engine") != -1 {
		t.Fatal("Index accepted an unknown name")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(EngineInfo{Name: "greedy", Run: func(context.Context, *graph.CSR, Options) (*Result, metrics.RunStats, error) {
		return nil, metrics.RunStats{}, nil
	}})
}

// TestRegistryEnginesProduceProperColorings smoke-runs every registered
// engine through the uniform contract on the same graph.
func TestRegistryEnginesProduceProperColorings(t *testing.T) {
	g := randomGraph(t, 500, 2500, 7)
	for _, info := range Engines() {
		res, _, err := info.Run(context.Background(), g, Options{Seed: 11, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
	}
}

// TestRegistryCancelBeforeRun is the acceptance criterion: every engine
// must return ctx.Err() on a pre-cancelled context, without touching the
// graph.
func TestRegistryCancelBeforeRun(t *testing.T) {
	g := randomGraph(t, 200, 800, 3)
	sum := graphChecksum(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, info := range Engines() {
		res, _, err := info.Run(ctx, g, Options{Seed: 1, Workers: 2})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", info.Name, err)
		}
		if res != nil {
			t.Fatalf("%s: returned a result alongside cancellation", info.Name)
		}
	}
	if graphChecksum(g) != sum {
		t.Fatal("an engine mutated the input graph")
	}
}

// TestRegistryCancelMidRun cancels every engine a moment after it starts
// on a graph large enough that none finishes first on a typical CI box,
// and asserts the engine notices within a bounded time and leaves the
// graph untouched. An engine that wins the race and completes is
// tolerated (timing noise) but logged.
func TestRegistryCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph cancellation sweep")
	}
	g := randomGraph(t, 120_000, 600_000, 5)
	sum := graphChecksum(g)
	const bound = 30 * time.Second
	for _, info := range Engines() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(2 * time.Millisecond)
				cancel()
			}()
			type outcome struct {
				res *Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, _, err := info.Run(ctx, g, Options{Seed: 9, Workers: 4})
				done <- outcome{res, err}
			}()
			select {
			case o := <-done:
				if o.err == nil {
					t.Logf("%s finished before cancellation took effect", info.Name)
					return
				}
				if !errors.Is(o.err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", o.err)
				}
				if o.res != nil {
					t.Fatal("result returned alongside cancellation")
				}
			case <-time.After(bound):
				t.Fatalf("engine did not return within %v of cancellation", bound)
			}
		})
	}
	if graphChecksum(g) != sum {
		t.Fatal("an engine mutated the input graph")
	}
}

// TestRegistryOptionsDefaults checks the palette default: MaxColors <= 0
// must mean MaxColorsDefault, not zero colors.
func TestRegistryOptionsDefaults(t *testing.T) {
	g := randomGraph(t, 100, 400, 1)
	info, ok := Lookup("bitwise")
	if !ok {
		t.Fatal("bitwise missing")
	}
	res, _, err := info.Run(context.Background(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryStatsContract checks that parallel engines fill Workers
// and Rounds while sequential ones leave RunStats zero-valued.
func TestRegistryStatsContract(t *testing.T) {
	g := randomGraph(t, 400, 1600, 2)
	for _, info := range Engines() {
		_, st, err := info.Run(context.Background(), g, Options{Seed: 4, Workers: 2})
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		if info.Parallel && st.Workers == 0 {
			t.Fatalf("%s: parallel engine reported zero workers", info.Name)
		}
		if !info.Parallel && st.Workers != 0 {
			t.Fatalf("%s: sequential engine reported %d workers", info.Name, st.Workers)
		}
	}
}
