package coloring

import (
	"context"
	"errors"
	"testing"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

func TestParallelBitwiseProper(t *testing.T) {
	g := randomGraph(t, 800, 8000, 13)
	res, st, err := ParallelBitwise(context.Background(), g, MaxColorsDefault, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 1 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	if st.Workers != 8 || len(st.VerticesPerWorker) != 8 {
		t.Fatalf("worker stats: %+v", st)
	}
	if st.TotalVertices() != int64(g.NumVertices()) {
		t.Fatalf("speculation claimed %d of %d vertices", st.TotalVertices(), g.NumVertices())
	}
	if st.ConflictsRepaired > st.ConflictsFound {
		t.Fatalf("repaired %d > found %d", st.ConflictsRepaired, st.ConflictsFound)
	}
}

// On a DBG-reordered graph the engine's descending-degree order is the
// identity, so a single worker must reproduce BitwiseGreedy exactly and
// never conflict.
func TestParallelBitwiseSingleWorkerEqualsBitwise(t *testing.T) {
	g := randomGraph(t, 300, 2000, 14)
	h, _ := reorder.DBG(g)
	res, st, err := ParallelBitwise(context.Background(), h, MaxColorsDefault, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 1 {
		t.Fatalf("single worker needed %d rounds", st.Rounds)
	}
	if st.ConflictsFound != 0 || st.ConflictsRepaired != 0 {
		t.Fatalf("single worker found %d conflicts", st.ConflictsFound)
	}
	want, _ := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
	for v := range want.Colors {
		if res.Colors[v] != want.Colors[v] {
			t.Fatalf("vertex %d: parallel %d bitwise %d", v, res.Colors[v], want.Colors[v])
		}
	}
}

func TestParallelBitwisePaletteExhausted(t *testing.T) {
	tri, _ := graph.FromEdgeList(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if _, _, err := ParallelBitwise(context.Background(), tri, 2, 2); !errors.Is(err, ErrPaletteExhausted) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelBitwiseEmptyGraph(t *testing.T) {
	g, _ := graph.FromEdgeList(0, nil)
	res, st, err := ParallelBitwise(context.Background(), g, 4, 4)
	if err != nil || st.Rounds != 0 || len(res.Colors) != 0 {
		t.Fatalf("empty: %v %d", err, st.Rounds)
	}
}

// The acceptance bar for the host-parallel reference: on every Table 3
// stand-in, proper colorings with a color count within 10% of the
// sequential bit-wise engine, at real parallelism.
func TestParallelBitwiseQualityOnTable3(t *testing.T) {
	for _, d := range gen.SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			h, _ := reorder.DBG(g)
			seq, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
			if err != nil {
				t.Fatal(err)
			}
			res, st, err := ParallelBitwise(context.Background(), h, MaxColorsDefault, 4)
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(h, res.Colors); err != nil {
				t.Fatal(err)
			}
			// 10% of the small stand-ins' 4-5 colors rounds to zero slack,
			// so speculative scheduling can flake the bound by a single
			// color; allow one color absolute on top of the 10%.
			limit := int(1.10 * float64(seq.NumColors))
			if limit < seq.NumColors+1 {
				limit = seq.NumColors + 1
			}
			if res.NumColors > limit {
				t.Fatalf("parallel used %d colors, sequential %d (>10%% worse)",
					res.NumColors, seq.NumColors)
			}
			if st.TotalVertices() != int64(h.NumVertices()) {
				t.Fatalf("claimed %d of %d vertices", st.TotalVertices(), h.NumVertices())
			}
		})
	}
}

// Hammer the lock-free hot path: many workers on a dense-ish conflict-
// heavy graph, repeated so the race detector sees plenty of interleavings.
func TestParallelBitwiseRaceStress(t *testing.T) {
	g := randomGraph(t, 500, 12000, 42)
	for i := 0; i < 10; i++ {
		res, _, err := ParallelBitwise(context.Background(), g, MaxColorsDefault, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkParallelBitwiseInternal(b *testing.B) {
	g, _ := gen.RMAT(14, 8, 0.57, 0.19, 0.19, 1)
	h, _ := reorder.DBG(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ParallelBitwise(context.Background(), h, MaxColorsDefault, 0); err != nil {
			b.Fatal(err)
		}
	}
}
