package coloring

import (
	"math/bits"
	"sync"
	"time"

	"bitcolor/internal/bitops"
	"bitcolor/internal/dispatch"
	"bitcolor/internal/graph"
	"bitcolor/internal/obs"
)

// Scratch is an arena of reusable engine state — color buffers, the
// shared atomic color array, ordering/pending sweeps, per-worker bit
// sets, codecs, gathers and forwarding rings, the counter shards, and
// the Result the engine hands back. It exists for the colord request
// pattern: repeated ColorContext calls against a cached graph should do
// zero steady-state heap allocation, which testing.AllocsPerRun
// enforces for the bitwise and dct engines at one worker.
//
// A Scratch belongs to one (engine, workers, graph size class) pool
// slot. Engines accept a mismatched Scratch silently by ignoring it
// (fits fails → the engine allocates as before), so a stale handle can
// never corrupt a run. A Scratch must not be used by two runs
// concurrently, and the *Result returned from a run backed by a Scratch
// is only valid until that Scratch's next run or Release — and the same
// holds for the RunStats per-worker/per-shard slices
// (VerticesPerWorker, BlocksPerWorker, ShardVertices, ShardDurations),
// which alias pooled buffers when a Scratch backs the run.
type Scratch struct {
	key scratchKey

	colors  []uint16
	shared  []uint32
	order   []graph.VertexID
	rank    []int32
	pending []graph.VertexID
	epoch   []uint32
	parts   []int32 // partition assignment vector (sharded engine)
	perWk   [3][]int64
	durs    [2][]time.Duration
	seen    []uint64 // distinct-color bitmap: 65536 bits, lazily built
	res     Result
	shards  *obs.ShardSet
	ws      []*workerScratch
	rings   *dispatch.RingSet
}

// scratchKey identifies one pool slot.
type scratchKey struct {
	engine  string
	workers int
	class   uint8
}

// sizeClass buckets vertex counts by power of two, so pooled buffers
// land on graphs of comparable size instead of thrashing between a toy
// graph and a billion-edge one.
func sizeClass(n int) uint8 {
	if n <= 0 {
		return 0
	}
	return uint8(bits.Len(uint(n)))
}

// scratchPools maps scratchKey → *sync.Pool. sync.Pool already shards
// by P; the outer map only resolves the slot.
var scratchPools sync.Map

// AcquireScratch returns a pooled (or fresh) Scratch for the named
// engine at the given worker count on an n-vertex graph. The worker
// count is normalized exactly as the engines normalize it (sequential
// engines pin it to 1; parallel engines default to GOMAXPROCS and cap
// at n), so the handle matches what the run will actually use. Pass the
// result in Options.Scratch and Release it when done.
func AcquireScratch(engine string, workers, n int) *Scratch {
	if info, ok := Lookup(engine); ok && !info.Parallel {
		workers = 1
	} else {
		workers = resolveWorkers(workers, n)
	}
	key := scratchKey{engine: engine, workers: workers, class: sizeClass(n)}
	p, _ := scratchPools.LoadOrStore(key, new(sync.Pool))
	if s, ok := p.(*sync.Pool).Get().(*Scratch); ok && s != nil {
		return s
	}
	return &Scratch{key: key}
}

// Release returns the Scratch to its pool. The Scratch — and any
// *Result a run backed by it returned — must not be used afterwards.
// Safe on nil.
func (s *Scratch) Release() {
	if s == nil {
		return
	}
	p, _ := scratchPools.LoadOrStore(s.key, new(sync.Pool))
	p.(*sync.Pool).Put(s)
}

// fits reports whether this Scratch was acquired for the given engine
// and effective worker count. Engines treat a non-fitting Scratch as
// absent. Safe on nil (reports false).
func (s *Scratch) fits(engine string, workers int) bool {
	return s != nil && s.key.engine == engine && s.key.workers == workers
}

// The buffer accessors below are all nil-receiver safe: without a
// Scratch they allocate fresh (the engines' previous behavior), with
// one they resize a retained buffer, growing capacity only on the first
// run at a new size.

func (s *Scratch) colorsBuf(n int) []uint16 {
	if s == nil || cap(s.colors) < n {
		b := make([]uint16, n)
		if s != nil {
			s.colors = b
		}
		return b
	}
	s.colors = s.colors[:n]
	clear(s.colors)
	return s.colors
}

func (s *Scratch) sharedBuf(n int) []uint32 {
	if s == nil || cap(s.shared) < n {
		b := make([]uint32, n)
		if s != nil {
			s.shared = b
		}
		return b
	}
	s.shared = s.shared[:n]
	clear(s.shared)
	return s.shared
}

func (s *Scratch) orderBuf(n int) []graph.VertexID {
	if s == nil || cap(s.order) < n {
		b := make([]graph.VertexID, n)
		if s != nil {
			s.order = b
		}
		return b
	}
	s.order = s.order[:n]
	return s.order
}

func (s *Scratch) rankBuf(n int) []int32 {
	if s == nil || cap(s.rank) < n {
		b := make([]int32, n)
		if s != nil {
			s.rank = b
		}
		return b
	}
	s.rank = s.rank[:n]
	return s.rank
}

func (s *Scratch) pendingBuf(n int) []graph.VertexID {
	if s == nil || cap(s.pending) < n {
		b := make([]graph.VertexID, n)
		if s != nil {
			s.pending = b
		}
		return b
	}
	s.pending = s.pending[:n]
	return s.pending
}

func (s *Scratch) epochBuf(n int) []uint32 {
	if s == nil || cap(s.epoch) < n {
		b := make([]uint32, n)
		if s != nil {
			s.epoch = b
		}
		return b
	}
	s.epoch = s.epoch[:n]
	clear(s.epoch)
	return s.epoch
}

// partsBuf returns a length-n int32 buffer for the sharded engine's
// partition assignment. Nil Scratch → nil, letting RangesInto allocate.
func (s *Scratch) partsBuf(n int) []int32 {
	if s == nil {
		return nil
	}
	if cap(s.parts) < n {
		s.parts = make([]int32, n)
	}
	return s.parts[:n]
}

// ringSet returns a reset forwarding-ring set of the given per-ring
// capacity — the sharded engine's per-(shard, worker) ring storage,
// retained across runs so steady-state serving builds each ring once.
func (s *Scratch) ringSet(capacity int) *dispatch.RingSet {
	if s == nil {
		return dispatch.NewRingSet(capacity)
	}
	if s.rings == nil || s.rings.Cap() != capacity {
		s.rings = dispatch.NewRingSet(capacity)
	} else {
		s.rings.ResetAll()
	}
	return s.rings
}

// perWorkerBuf returns a length-`workers` int64 buffer for one of the
// per-worker stat exports (slot 0/1: vertex/block counters; slot 2: the
// sharded engine's per-shard vertex fold). Nil Scratch → nil, letting
// obs.ShardSet.PerWorkerInto allocate.
func (s *Scratch) perWorkerBuf(slot, workers int) []int64 {
	if s == nil {
		return nil
	}
	if cap(s.perWk[slot]) < workers {
		s.perWk[slot] = make([]int64, workers)
	}
	return s.perWk[slot][:workers]
}

// durBuf returns a zeroed length-n duration buffer (slot 0: the sharded
// engine's flat per-goroutine phase timings; slot 1: its per-shard
// RunStats.ShardDurations export). Nil Scratch → nil; callers fall back
// to make, exactly the pre-pooling behavior.
func (s *Scratch) durBuf(slot, n int) []time.Duration {
	if s == nil {
		return nil
	}
	if cap(s.durs[slot]) < n {
		s.durs[slot] = make([]time.Duration, n)
	}
	b := s.durs[slot][:n]
	clear(b)
	return b
}

// shardSet returns a reset ShardSet for the worker count.
func (s *Scratch) shardSet(workers int) *obs.ShardSet {
	if s == nil {
		return obs.NewShardSet(workers)
	}
	if s.shards == nil || s.shards.Workers() != workers {
		s.shards = obs.NewShardSet(workers)
	} else {
		s.shards.Reset()
	}
	return s.shards
}

// result packages a run's outcome, reusing the pooled Result value when
// a Scratch backs the run.
func (s *Scratch) result(colors []uint16, numColors int, st OpStats) *Result {
	if s == nil {
		return &Result{Colors: colors, NumColors: numColors, Stats: st}
	}
	s.res = Result{Colors: colors, NumColors: numColors, Stats: st}
	return &s.res
}

// distinctColors counts distinct nonzero colors. With a Scratch it uses
// a retained 8 KiB bitmap instead of countColors's map (the map is the
// one unavoidable allocation in the engines' epilogue otherwise).
func (s *Scratch) distinctColors(colors []uint16) int {
	if s == nil {
		return countColors(colors)
	}
	if s.seen == nil {
		s.seen = make([]uint64, 1<<16/64)
	} else {
		clear(s.seen)
	}
	count := 0
	for _, c := range colors {
		if c == 0 {
			continue
		}
		if s.seen[c>>6]&(1<<(c&63)) == 0 {
			s.seen[c>>6] |= 1 << (c & 63)
			count++
		}
	}
	return count
}

// workerScratch is one worker's reusable hot-path state, shared by the
// parallel engines (parallelbitwise uses state/codec/ga/next, dct uses
// state/codec/ga/ring). Exactly one goroutine owns an instance during a
// run.
type workerScratch struct {
	state     *bitops.BitSet
	codec     *bitops.ColorCodec
	ga        gather
	sh        *obs.Shard
	ring      *dispatch.ForwardRing
	next      []graph.VertexID // vertices re-colored this sweep (repair)
	err       error
	maxColors int
}

// ensure sizes the bit set and codec for the palette and clears
// run-scoped state.
func (w *workerScratch) ensure(maxColors int) {
	if w.maxColors != maxColors || w.state == nil {
		w.state = bitops.NewBitSet(maxColors)
		w.codec = bitops.NewColorCodec(maxColors)
		w.maxColors = maxColors
	} else {
		w.state.Reset()
	}
	w.err = nil
	w.next = w.next[:0]
}

// ensureRing makes sure the worker has a reset forwarding ring of the
// given capacity.
func (w *workerScratch) ensureRing(capacity int) *dispatch.ForwardRing {
	if w.ring == nil || w.ring.Cap() != capacity {
		w.ring = dispatch.NewForwardRing(capacity)
	} else {
		w.ring.Reset()
	}
	return w.ring
}

// workerAt returns worker w's scratch, creating or resizing as needed.
// Nil Scratch → a fresh workerScratch (the engines' old allocation).
func (s *Scratch) workerAt(w, maxColors int) *workerScratch {
	if s == nil {
		ws := &workerScratch{
			next: make([]graph.VertexID, 0, 256),
		}
		ws.ensure(maxColors)
		return ws
	}
	for len(s.ws) <= w {
		s.ws = append(s.ws, &workerScratch{next: make([]graph.VertexID, 0, 256)})
	}
	ws := s.ws[w]
	ws.ensure(maxColors)
	return ws
}
