package coloring

import (
	"context"
	"errors"
	"testing"
	"time"

	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/reorder"
)

// pathGraph builds the n-vertex path 0-1-2-…-(n-1): the worst case for
// color forwarding, because every vertex waits on its immediate
// predecessor and the dependency chain spans the whole graph.
func pathGraph(t testing.TB, n int) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, n-1)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(i), V: graph.VertexID(i + 1)}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDCTMatchesGreedyEveryWorkerCount pins the tentpole acceptance
// criterion: on the DBG order the DCT engine completes in exactly one
// pass with zero repairs and its coloring is byte-identical to
// sequential greedy for every worker count.
func TestDCTMatchesGreedyEveryWorkerCount(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"random": randomGraph(t, 2000, 24000, 9),
		"path":   pathGraph(t, 5000),
	}
	dbg, _ := reorder.DBG(randomGraph(t, 1500, 18000, 4))
	graphs["dbg"] = dbg
	for name, g := range graphs {
		ref, err := Greedy(context.Background(), g, MaxColorsDefault)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4, 8} {
			res, st, err := DCTOpts(context.Background(), g, MaxColorsDefault, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s w=%d: %v", name, w, err)
			}
			if err := Verify(g, res.Colors); err != nil {
				t.Fatalf("%s w=%d: %v", name, w, err)
			}
			if st.Rounds != 1 || st.ConflictsFound != 0 || st.ConflictsRepaired != 0 {
				t.Fatalf("%s w=%d: not a single clean pass: rounds=%d conflicts=%d/%d",
					name, w, st.Rounds, st.ConflictsFound, st.ConflictsRepaired)
			}
			if st.Workers != w {
				t.Fatalf("%s: Workers = %d, want %d", name, st.Workers, w)
			}
			for v := range ref.Colors {
				if res.Colors[v] != ref.Colors[v] {
					t.Fatalf("%s w=%d: vertex %d: dct %d, greedy %d",
						name, w, v, res.Colors[v], ref.Colors[v])
				}
			}
			if st.TotalVertices() != int64(g.NumVertices()) {
				t.Fatalf("%s w=%d: colored %d of %d vertices",
					name, w, st.TotalVertices(), g.NumVertices())
			}
		}
	}
}

// TestDCTPathGraphStarvation is the worst-case forwarding chain: on a
// path every vertex v defers on v-1 until that color lands, so the
// engine lives off its rings and spin fallback. The run must terminate,
// alternate two colors like greedy, and never need a repair.
func TestDCTPathGraphStarvation(t *testing.T) {
	g := pathGraph(t, 50_000)
	for _, w := range []int{2, 4, 8} {
		res, st, err := DCTOpts(context.Background(), g, MaxColorsDefault, Options{Workers: w})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if res.NumColors != 2 {
			t.Fatalf("w=%d: path colored with %d colors, want 2", w, res.NumColors)
		}
		for v, c := range res.Colors {
			if want := uint16(1 + v%2); c != want {
				t.Fatalf("w=%d: vertex %d colored %d, want %d", w, v, c, want)
			}
		}
		if st.Rounds != 1 || st.ConflictsRepaired != 0 {
			t.Fatalf("w=%d: rounds=%d repaired=%d", w, st.Rounds, st.ConflictsRepaired)
		}
	}
}

// TestDCTDeferredTelemetry: deferrals are scheduling-dependent, so no
// single run is guaranteed to park — but across repeated multi-worker
// runs on a path graph (where any worker that pulls ahead must park) a
// complete absence of deferrals means the counters are dead.
func TestDCTDeferredTelemetry(t *testing.T) {
	g := pathGraph(t, 20_000)
	var deferred, retries int64
	ringPeak := 0
	for i := 0; i < 20 && deferred == 0; i++ {
		_, st, err := DCTOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		deferred += st.Deferred
		retries += st.DeferRetries
		if st.ForwardRingPeak > ringPeak {
			ringPeak = st.ForwardRingPeak
		}
	}
	if deferred == 0 {
		t.Fatal("20 multi-worker path runs never deferred a vertex")
	}
	if retries < deferred {
		t.Fatalf("retries %d < deferred %d: every park needs at least one replay", retries, deferred)
	}
	if ringPeak == 0 {
		t.Fatal("deferred vertices recorded but ring peak stayed zero")
	}
	if ringPeak > ForwardRingCap {
		t.Fatalf("ring peak %d exceeds the bound %d", ringPeak, ForwardRingCap)
	}
}

// TestDCTCancelMidPass cancels a multi-worker run shortly after start on
// a graph big enough that it cannot finish first, and asserts the engine
// returns ctx.Err() with no result — including the workers parked in
// spin waits, which must notice the abort flag.
func TestDCTCancelMidPass(t *testing.T) {
	g := pathGraph(t, 2_000_000)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, _, err := DCTOpts(ctx, g, MaxColorsDefault, Options{Workers: 4})
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		if o.err == nil {
			t.Log("run finished before cancellation took effect")
			return
		}
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", o.err)
		}
		if o.res != nil {
			t.Fatal("result returned alongside cancellation")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("engine did not return after cancellation")
	}
}

// TestDCTPaletteExhausted: a clique needs n colors; with a smaller
// palette every worker must stop and agree on ErrPaletteExhausted
// rather than hang waiting for colors that will never be published.
func TestDCTPaletteExhausted(t *testing.T) {
	const n = 80
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
		}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		res, _, err := DCTOpts(context.Background(), g, 64, Options{MaxColors: 64, Workers: w, ForceGather: true})
		if !errors.Is(err, ErrPaletteExhausted) {
			t.Fatalf("w=%d: want ErrPaletteExhausted, got %v", w, err)
		}
		if res != nil {
			t.Fatalf("w=%d: result returned alongside palette exhaustion", w)
		}
	}
}

// TestDCTEmptyGraph pins the degenerate case.
func TestDCTEmptyGraph(t *testing.T) {
	g, err := graph.FromEdgeList(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := DCTOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 0 || st.Rounds != 0 {
		t.Fatalf("empty graph: colors=%d rounds=%d", res.NumColors, st.Rounds)
	}
}

// TestDCTRaceStress hammers the forwarding path under the race detector:
// dense random graphs where cross-worker waits are constant.
func TestDCTRaceStress(t *testing.T) {
	g := randomGraph(t, 500, 12000, 77)
	ref, err := Greedy(context.Background(), g, MaxColorsDefault)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		res, _, err := DCTOpts(context.Background(), g, MaxColorsDefault, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		for v := range ref.Colors {
			if res.Colors[v] != ref.Colors[v] {
				t.Fatalf("iteration %d vertex %d: dct %d, greedy %d", i, v, res.Colors[v], ref.Colors[v])
			}
		}
	}
}

// TestAdaptiveGatherDecision pins the average-degree heuristic across
// all three host engines: low-degree graphs auto-disable the gather
// (recorded in GatherStats), ForceGather overrides the heuristic, and
// DisableGather is never reported as an auto decision.
func TestAdaptiveGatherDecision(t *testing.T) {
	sparse := pathGraph(t, 4000)                    // avg degree ~2: below the threshold
	dense, _ := reorder.DBG(randomGraph(t, 1000, 12000, 5)) // avg degree ~24: above it
	engines := []struct {
		name string
		run  func(g *graph.CSR, opts Options) (ParallelStatsProbe, error)
	}{
		{"parallelbitwise", func(g *graph.CSR, opts Options) (ParallelStatsProbe, error) {
			_, st, err := ParallelBitwiseOpts(context.Background(), g, MaxColorsDefault, opts)
			return ParallelStatsProbe{st.Gather.AutoDisabled, st.Gather.Reads(), st.HotThreshold}, err
		}},
		{"speculative", func(g *graph.CSR, opts Options) (ParallelStatsProbe, error) {
			_, st, err := SpeculativeOpts(context.Background(), g, MaxColorsDefault, opts)
			return ParallelStatsProbe{st.Gather.AutoDisabled, st.Gather.Reads(), st.HotThreshold}, err
		}},
		{"dct", func(g *graph.CSR, opts Options) (ParallelStatsProbe, error) {
			_, st, err := DCTOpts(context.Background(), g, MaxColorsDefault, opts)
			return ParallelStatsProbe{st.Gather.AutoDisabled, st.Gather.Reads(), st.HotThreshold}, err
		}},
	}
	for _, e := range engines {
		t.Run(e.name, func(t *testing.T) {
			// Low degree, default options: the heuristic switches off.
			p, err := e.run(sparse, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if !p.AutoDisabled || p.Reads != 0 || p.HotThreshold != 0 {
				t.Fatalf("sparse default: %+v, want auto-disabled with zero gather stats", p)
			}
			// ForceGather bypasses the heuristic.
			p, err = e.run(sparse, Options{Workers: 2, ForceGather: true})
			if err != nil {
				t.Fatal(err)
			}
			if p.AutoDisabled || p.Reads == 0 || p.HotThreshold == 0 {
				t.Fatalf("sparse forced: %+v, want gather on", p)
			}
			// Explicit disable is not an auto decision.
			p, err = e.run(sparse, Options{Workers: 2, DisableGather: true})
			if err != nil {
				t.Fatal(err)
			}
			if p.AutoDisabled || p.Reads != 0 {
				t.Fatalf("sparse disabled: %+v, want plain off", p)
			}
			// High degree, default options: the gather stays on.
			p, err = e.run(dense, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if p.AutoDisabled || p.Reads == 0 {
				t.Fatalf("dense default: %+v, want gather on", p)
			}
		})
	}
}

// ParallelStatsProbe is the slice of RunStats the adaptive-gather test
// compares across engines.
type ParallelStatsProbe struct {
	AutoDisabled bool
	Reads        int64
	HotThreshold uint32
}

// TestDCTQualityOnTable3 runs the engine across every Table 3 stand-in
// at real parallelism: always one pass, always exactly the sequential
// greedy coloring of the DBG order.
func TestDCTQualityOnTable3(t *testing.T) {
	for _, d := range gen.SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			h, _ := reorder.DBG(g)
			seq, err := BitwiseGreedy(context.Background(), h, MaxColorsDefault, true)
			if err != nil {
				t.Fatal(err)
			}
			res, st, err := DCTOpts(context.Background(), h, MaxColorsDefault, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if st.Rounds != 1 {
				t.Fatalf("rounds = %d", st.Rounds)
			}
			for v := range seq.Colors {
				if res.Colors[v] != seq.Colors[v] {
					t.Fatalf("vertex %d: dct %d, sequential %d", v, res.Colors[v], seq.Colors[v])
				}
			}
		})
	}
}
