package coloring

import (
	"context"

	"bitcolor/internal/graph"
)

// RLF implements the Recursive Largest First heuristic (Leighton 1979):
// build one color class at a time as a maximal independent set, always
// adding the uncolored vertex with the most neighbors in the "forbidden"
// set (vertices adjacent to the class under construction). RLF typically
// uses fewer colors than first-fit greedy and DSATUR at higher cost —
// it rounds out the quality end of the algorithm landscape the paper
// surveys in §2. Cancellation is polled per class-grow iteration — each
// iteration is an O(n) scan, so the poll is prompt and cheap relative to
// the work it guards.
func RLF(ctx context.Context, g *graph.CSR, maxColors int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	colors := make([]uint16, n)
	remaining := n
	// state per vertex within one class construction:
	//   0 = candidate (uncolored, not adjacent to the class)
	//   1 = forbidden (uncolored, adjacent to the class)
	//   2 = colored in a previous class
	const (
		candidate = 0
		forbidden = 1
		done      = 2
	)
	state := make([]uint8, n)
	// degForbidden[v] = neighbors of v in the forbidden set;
	// degCandidate[v] = uncolored candidate neighbors of v.
	degForbidden := make([]int, n)
	degCandidate := make([]int, n)
	for color := uint16(1); remaining > 0; color++ {
		if int(color) > maxColors {
			return nil, ErrPaletteExhausted
		}
		// Reset per-class state.
		for v := 0; v < n; v++ {
			if colors[v] != 0 {
				state[v] = done
			} else {
				state[v] = candidate
			}
			degForbidden[v] = 0
			degCandidate[v] = 0
		}
		for v := 0; v < n; v++ {
			if state[v] != candidate {
				continue
			}
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				if state[u] == candidate {
					degCandidate[v]++
				}
			}
		}
		// Seed: the candidate with maximum uncolored degree.
		seed := -1
		for v := 0; v < n; v++ {
			if state[v] == candidate &&
				(seed == -1 || degCandidate[v] > degCandidate[seed]) {
				seed = v
			}
		}
		if seed == -1 {
			break // nothing uncolored (shouldn't happen with remaining > 0)
		}
		addToClass := func(v int) {
			colors[v] = color
			state[v] = done
			remaining--
			for _, u := range g.Neighbors(graph.VertexID(v)) {
				if state[u] == candidate {
					state[u] = forbidden
					// u moving to forbidden updates its neighbors'
					// forbidden degrees.
					for _, w := range g.Neighbors(u) {
						if state[w] == candidate {
							degForbidden[w]++
						}
					}
				}
			}
		}
		addToClass(seed)
		// Grow the class: repeatedly take the candidate with the most
		// forbidden neighbors (ties: most candidate neighbors).
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			best := -1
			for v := 0; v < n; v++ {
				if state[v] != candidate {
					continue
				}
				if best == -1 ||
					degForbidden[v] > degForbidden[best] ||
					(degForbidden[v] == degForbidden[best] && degCandidate[v] > degCandidate[best]) {
					best = v
				}
			}
			if best == -1 {
				break
			}
			addToClass(best)
		}
	}
	return &Result{Colors: colors, NumColors: countColors(colors)}, nil
}
