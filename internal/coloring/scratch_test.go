package coloring

import (
	"context"
	"math/rand"
	"testing"

	"bitcolor/internal/graph"
)

func scratchTestGraph(t *testing.T, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n)),
		})
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestScratchColoringsIdentical verifies a pooled Scratch never changes
// the colors an engine produces, across engines, worker counts and
// repeated reuse of the same Scratch.
func TestScratchColoringsIdentical(t *testing.T) {
	g := scratchTestGraph(t, 600, 4000, 42)
	ctx := context.Background()
	for _, engine := range []string{"bitwise", "dct", "parallelbitwise"} {
		info, ok := Lookup(engine)
		if !ok {
			t.Fatalf("engine %q not registered", engine)
		}
		for _, workers := range []int{1, 2, 4} {
			if workers > 1 && !info.Parallel {
				continue
			}
			opts := Options{Workers: workers}
			want, _, err := info.Run(ctx, g, opts)
			if err != nil {
				t.Fatal(err)
			}
			sc := AcquireScratch(engine, workers, g.NumVertices())
			for rep := 0; rep < 3; rep++ {
				opts.Scratch = sc
				got, _, err := info.Run(ctx, g, opts)
				if err != nil {
					t.Fatalf("%s w=%d rep %d: %v", engine, workers, rep, err)
				}
				if got.NumColors != want.NumColors {
					t.Fatalf("%s w=%d rep %d: %d colors, want %d",
						engine, workers, rep, got.NumColors, want.NumColors)
				}
				// parallelbitwise at w>1 is speculative (colors can differ
				// run to run); the deterministic engines must match exactly.
				if engine == "parallelbitwise" && workers > 1 {
					if err := Verify(g, got.Colors); err != nil {
						t.Fatal(err)
					}
					continue
				}
				for v := range want.Colors {
					if got.Colors[v] != want.Colors[v] {
						t.Fatalf("%s w=%d rep %d: color[%d] = %d, want %d",
							engine, workers, rep, v, got.Colors[v], want.Colors[v])
					}
				}
			}
			sc.Release()
		}
	}
}

// TestScratchMismatchIgnored checks an engine handed a Scratch acquired
// for a different engine or worker count ignores it and still colors
// correctly.
func TestScratchMismatchIgnored(t *testing.T) {
	g := scratchTestGraph(t, 200, 1000, 7)
	ctx := context.Background()
	sc := AcquireScratch("parallelbitwise", 4, g.NumVertices())
	defer sc.Release()
	res, err := BitwiseGreedyScratch(ctx, g, MaxColorsDefault, true, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	info, _ := Lookup("dct")
	res2, _, err := info.Run(ctx, g, Options{Workers: 2, Scratch: sc})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res2.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestScratchPoolRoundTrip checks Acquire → Release → Acquire hands the
// same Scratch back (pooling actually happens) for a fixed key.
func TestScratchPoolRoundTrip(t *testing.T) {
	sc := AcquireScratch("bitwise", 1, 1000)
	sc.colorsBuf(1000)
	sc.Release()
	sc2 := AcquireScratch("bitwise", 1, 1000)
	defer sc2.Release()
	// sync.Pool gives no hard guarantee, but within one goroutine with
	// no GC in between the round trip holds; treat a miss as a skip so
	// the test never flakes.
	if sc2 != sc {
		t.Skip("pool did not return the released Scratch (GC ran?)")
	}
	if cap(sc2.colors) < 1000 {
		t.Fatal("pooled Scratch lost its buffers")
	}
}

// TestScratchZeroAllocEngines proves the bitwise and dct engines at one
// worker do zero steady-state heap allocations per run on a pooled
// Scratch — the load-once, color-millions-of-times service pattern.
func TestScratchZeroAllocEngines(t *testing.T) {
	g := scratchTestGraph(t, 2000, 16000, 11)
	ctx := context.Background()
	for _, engine := range []string{"bitwise", "dct"} {
		info, ok := Lookup(engine)
		if !ok {
			t.Fatalf("engine %q not registered", engine)
		}
		sc := AcquireScratch(engine, 1, g.NumVertices())
		opts := Options{Workers: 1, Scratch: sc}
		// Warm: first run grows the buffers.
		if _, _, err := info.Run(ctx, g, opts); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, _, err := info.Run(ctx, g, opts); err != nil {
				t.Fatal(err)
			}
		})
		sc.Release()
		if avg != 0 {
			t.Errorf("%s w=1 on pooled Scratch: %.1f allocs/run, want 0", engine, avg)
		}
	}
}
