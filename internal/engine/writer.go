package engine

import (
	"fmt"

	"bitcolor/internal/cache"
	"bitcolor/internal/mem"
)

// Writer is the module of Fig 6 that receives color results from a BWPE
// and updates the source vertex's color in the cache (high-degree
// vertices, through the engine's write port) or DRAM (low-degree
// vertices, as a posted block write that does not stall the engine).
// It also owns the authoritative software-visible color array.
type Writer struct {
	colors  []uint16
	hvc     *cache.HVC // nil when HDC is off
	channel *mem.Channel
	port    int // HVC write port = engine ID
	stats   WriterStats
}

// WriterStats counts write routing.
type WriterStats struct {
	CacheWrites int64
	DRAMWrites  int64
}

// NewWriter builds the writer for one engine.
func NewWriter(colors []uint16, hvc *cache.HVC, channel *mem.Channel, port int) *Writer {
	if channel == nil {
		panic("engine: writer needs a DRAM channel")
	}
	return &Writer{colors: colors, hvc: hvc, channel: channel, port: port}
}

// Write commits the color of v at cycle `now`. Cache writes cost one
// (pipelined) cycle; DRAM writes are posted and occupy the channel
// without stalling the engine. Returns true when the write went on-chip.
func (w *Writer) Write(v uint32, color uint16, now int64) bool {
	if int(v) >= len(w.colors) {
		panic(fmt.Sprintf("engine: write for vertex %d beyond array of %d", v, len(w.colors)))
	}
	w.colors[v] = color
	if w.hvc != nil && w.hvc.Contains(v) {
		if !w.hvc.Write(w.port, v, color) {
			panic("engine: resident write rejected")
		}
		w.stats.CacheWrites++
		return true
	}
	block, _ := mem.ColorBlock(v)
	w.channel.WriteBlock(block, now)
	w.stats.DRAMWrites++
	return false
}

// Stats returns the write counters.
func (w *Writer) Stats() WriterStats { return w.stats }
