package engine

import (
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

// PingPongBuffer models the paired edge buffers of Fig 7 Step ①: while
// the BWPE drains destination vertices from one buffer, the other is
// filled from DRAM, so edge streaming overlaps processing. The model
// tracks which edge block is resident so a vertex whose edges start in
// the block already buffered (common for consecutive low-degree
// vertices) skips that fetch entirely.
type PingPongBuffer struct {
	channel       *mem.Channel
	edgesPerBlock int64
	residentBlock int64 // newest edge block held, -1 when empty
	stats         PingPongStats
}

// PingPongStats counts buffer activity.
type PingPongStats struct {
	BlocksFetched int64
	BlocksReused  int64
	Fills         int64 // vertices streamed
}

// NewPingPongBuffer wires the buffer pair to its edge-stream channel.
func NewPingPongBuffer(channel *mem.Channel, edgesPerBlock int) *PingPongBuffer {
	if edgesPerBlock <= 0 {
		edgesPerBlock = mem.BlockBits / 32
	}
	return &PingPongBuffer{
		channel:       channel,
		edgesPerBlock: int64(edgesPerBlock),
		residentBlock: -1,
	}
}

// Fill streams the edge range [se, de) of a vertex into the buffers
// starting at cycle `now`, returning the cycle at which the last block
// lands. Because the pair double-buffers, the caller treats the fetch as
// overlapped with processing: the vertex occupies the engine for
// max(pipeline, fetch).
func (b *PingPongBuffer) Fill(se, de int64, now int64) (done int64) {
	if de <= se {
		return now
	}
	b.stats.Fills++
	firstBlock := se / b.edgesPerBlock
	lastBlock := (de - 1) / b.edgesPerBlock
	if firstBlock == b.residentBlock {
		b.stats.BlocksReused++
		firstBlock++
	}
	done = now
	for blk := firstBlock; blk <= lastBlock; blk++ {
		done = b.channel.ReadBlock(blk, done)
		b.stats.BlocksFetched++
	}
	if lastBlock > b.residentBlock {
		b.residentBlock = lastBlock
	}
	return done
}

// FillVertex is Fill over a vertex's CSR range.
func (b *PingPongBuffer) FillVertex(g *graph.CSR, v uint32, now int64) int64 {
	se, de := g.EdgeRange(graph.VertexID(v))
	return b.Fill(se, de, now)
}

// Stats returns buffer counters.
func (b *PingPongBuffer) Stats() PingPongStats { return b.stats }

// Invalidate drops the resident block (used between independent runs).
func (b *PingPongBuffer) Invalidate() { b.residentBlock = -1 }
