package engine_test

import (
	"context"
	"math/rand"
	"testing"

	"bitcolor/internal/bitops"
	"bitcolor/internal/cache"
	"bitcolor/internal/coloring"
	"bitcolor/internal/engine"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
	"bitcolor/internal/reorder"
)

func randomSortedGraph(t testing.TB, n, m int, seed int64) *graph.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{U: graph.VertexID(rng.Intn(n)), V: graph.VertexID(rng.Intn(n))}
	}
	g, err := graph.FromEdgeList(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	h, _ := reorder.DBG(g)
	return h
}

// singlePE builds a one-engine rig over g with the given options.
func singlePE(g *graph.CSR, opts engine.Options, cacheVertices int) (*engine.BWPE, []uint16) {
	colors := make([]uint16, g.NumVertices())
	cfg := engine.DefaultConfig()
	cfg.Options = opts
	cfg.SortedEdges = g.EdgesSorted()
	var hvc *cache.HVC
	if opts.HDC {
		if cacheVertices <= 0 {
			cacheVertices = g.NumVertices()
		}
		hvc = cache.NewHVC(cache.NewBitSelectCache(1, cacheVertices), cacheVertices)
	}
	pe := engine.NewBWPE(0, g, colors, hvc,
		mem.NewChannel(mem.DefaultDRAMConfig()),
		mem.NewChannel(mem.DefaultDRAMConfig()), 0, cfg)
	return pe, colors
}

// runSingle colors the whole graph on one engine in index order.
func runSingle(t testing.TB, g *graph.CSR, opts engine.Options, cacheVertices int) (*engine.BWPE, []uint16, int64) {
	t.Helper()
	pe, colors := singlePE(g, opts, cacheVertices)
	now := int64(0)
	for v := 0; v < g.NumVertices(); v++ {
		rep, err := pe.ColorVertex(uint32(v), now, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		now = rep.End
	}
	return pe, colors, now
}

func TestSingleBWPEMatchesSoftwareGreedy(t *testing.T) {
	g := randomSortedGraph(t, 400, 3000, 1)
	want, err := coloring.Greedy(context.Background(), g, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []engine.Options{
		{},
		{HDC: true},
		{HDC: true, BWC: true},
		{HDC: true, BWC: true, MGR: true},
		engine.AllOptions(),
	} {
		_, colors, _ := runSingle(t, g, opts, 0)
		for v := range colors {
			if colors[v] != want.Colors[v] {
				t.Fatalf("opts %+v: vertex %d engine %d software %d", opts, v, colors[v], want.Colors[v])
			}
		}
	}
}

func TestOptimizationsReduceCycles(t *testing.T) {
	g := randomSortedGraph(t, 600, 6000, 2)
	_, _, baseline := runSingle(t, g, engine.Options{}, 0)
	peHDC, _, hdc := runSingle(t, g, engine.Options{HDC: true}, 0)
	_, _, bwc := runSingle(t, g, engine.Options{HDC: true, BWC: true}, 0)
	peAll, _, all := runSingle(t, g, engine.AllOptions(), 0)
	if hdc >= baseline {
		t.Fatalf("HDC did not reduce cycles: %d >= %d", hdc, baseline)
	}
	if bwc >= hdc {
		t.Fatalf("BWC did not reduce cycles: %d >= %d", bwc, hdc)
	}
	if all >= bwc {
		t.Fatalf("PUV+MGR did not reduce cycles: %d >= %d", all, bwc)
	}
	if peHDC.Stats().CacheHits == 0 {
		t.Fatal("HDC never hit")
	}
	if peAll.Stats().EdgesPruned == 0 {
		t.Fatal("PUV never pruned")
	}
}

func TestBWCReducesComputeOnly(t *testing.T) {
	g := randomSortedGraph(t, 500, 5000, 3)
	peNo, _, _ := runSingle(t, g, engine.Options{HDC: true}, 0)
	peYes, _, _ := runSingle(t, g, engine.Options{HDC: true, BWC: true}, 0)
	if peYes.Stats().ComputeCycles >= peNo.Stats().ComputeCycles {
		t.Fatalf("BWC compute %d >= baseline %d",
			peYes.Stats().ComputeCycles, peNo.Stats().ComputeCycles)
	}
	// DRAM behaviour identical: all reads cached either way.
	if peYes.Stats().DRAMColorReads != peNo.Stats().DRAMColorReads {
		t.Fatal("BWC changed DRAM access")
	}
}

func TestHDCPartialCache(t *testing.T) {
	g := randomSortedGraph(t, 1000, 8000, 4)
	// Cache only the top 100 vertices: hits and misses must both occur,
	// and the result must stay correct.
	pe, colors, _ := runSingle(t, g, engine.Options{HDC: true, BWC: true, MGR: true, PUV: true}, 100)
	if err := coloring.Verify(g, colors); err != nil {
		t.Fatal(err)
	}
	st := pe.Stats()
	if st.CacheHits == 0 || st.DRAMColorReads == 0 {
		t.Fatalf("expected mixed cache/DRAM traffic, got hits=%d dram=%d",
			st.CacheHits, st.DRAMColorReads)
	}
	// DBG puts high-degree vertices first, so the 100 cached vertices
	// must absorb a disproportionate share of reads.
	frac := float64(st.CacheHits) / float64(st.CacheHits+st.DRAMColorReads)
	if frac < 0.15 {
		t.Fatalf("cache absorbed only %.1f%% of reads; degree skew not exploited", frac*100)
	}
}

func TestMGRMergesSortedReads(t *testing.T) {
	g := randomSortedGraph(t, 2000, 16000, 5)
	peOff, _, _ := runSingle(t, g, engine.Options{PUV: true}, 0)
	peOn, _, _ := runSingle(t, g, engine.Options{MGR: true, PUV: true}, 0)
	offReads := peOff.Loader().Stats().DRAMReads
	onReads := peOn.Loader().Stats().DRAMReads
	if onReads >= offReads {
		t.Fatalf("MGR did not reduce DRAM reads: %d >= %d", onReads, offReads)
	}
	if peOn.Loader().Stats().MergedReads == 0 {
		t.Fatal("no merged reads recorded")
	}
}

func TestPUVTailPruning(t *testing.T) {
	// Star with center 0: center's neighbors all have bigger indices, so
	// with sorted edges the center prunes its entire adjacency after one
	// probe.
	var edges []graph.Edge
	for i := 1; i <= 64; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.VertexID(i)})
	}
	g, err := graph.FromEdgeList(65, edges)
	if err != nil {
		t.Fatal(err)
	}
	pe, colors := singlePE(g, engine.AllOptions(), 0)
	rep, err := pe.ColorVertex(0, 0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EdgesPruned != 64 {
		t.Fatalf("pruned %d edges, want 64", rep.EdgesPruned)
	}
	if rep.DRAMColorReads != 0 || rep.CacheHits != 0 {
		t.Fatal("pruned edges still fetched colors")
	}
	if colors[0] != 1 {
		t.Fatalf("center color = %d, want 1", colors[0])
	}
}

func TestDCTConflictDeferral(t *testing.T) {
	// Two adjacent vertices colored "in parallel": vertex 1 must defer on
	// in-flight vertex 0 and wait for its result.
	g, err := graph.FromEdgeList(2, []graph.Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	colors := make([]uint16, 2)
	cfg := engine.DefaultConfig()
	cfg.Options = engine.Options{BWC: true} // no cache: simplest rig
	mk := func(id int) *engine.BWPE {
		return engine.NewBWPE(id, g, colors, nil,
			mem.NewChannel(mem.DefaultDRAMConfig()),
			mem.NewChannel(mem.DefaultDRAMConfig()), 2, cfg)
	}
	pe0, pe1 := mk(0), mk(1)
	rep0, err := pe0.ColorVertex(0, 0, []engine.PeerTask{{PEID: 1, Vertex: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const forwardAt = int64(500)
	rep1, err := pe1.ColorVertex(1, 0, []engine.PeerTask{{PEID: 0, Vertex: 0}},
		func(peID int) (int64, uint16) {
			if peID != 0 {
				t.Fatalf("asked for peer %d", peID)
			}
			return forwardAt, rep0.Color
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.EdgesDeferred != 1 {
		t.Fatalf("deferred %d edges, want 1", rep1.EdgesDeferred)
	}
	if rep1.ConflictWaitCycles == 0 {
		t.Fatal("no conflict wait recorded")
	}
	if rep1.End < forwardAt {
		t.Fatalf("vertex 1 finished at %d before peer forward at %d", rep1.End, forwardAt)
	}
	if rep0.Color == rep1.Color {
		t.Fatalf("conflict resolution failed: both vertices got color %d", rep0.Color)
	}
	if err := coloring.Verify(g, colors); err != nil {
		t.Fatal(err)
	}
}

func TestDCTVertexOrderPriority(t *testing.T) {
	d := engine.NewDCT(4)
	// Self vertex 10: peers with vertices 3 (smaller) and 20 (larger).
	d.Configure(10, []engine.PeerTask{{PEID: 1, Vertex: 3}, {PEID: 2, Vertex: 20}})
	if len(d.Rows()) != 1 || d.Rows()[0].Vertex != 3 {
		t.Fatalf("DCT recorded %+v, want only vertex 3", d.Rows())
	}
	if d.Check(20) {
		t.Fatal("larger in-flight vertex treated as conflict")
	}
	if !d.Check(3) {
		t.Fatal("smaller in-flight vertex not flagged")
	}
	if d.AllConflictsValid() {
		t.Fatal("conflict valid before completion")
	}
	cset := bitops.NewBitSet(8)
	cset.Set(0)
	d.Complete(1, cset)
	if !d.AllConflictsValid() {
		t.Fatal("conflict not valid after completion")
	}
	state := bitops.NewBitSet(8)
	d.ResolveInto(state)
	if !state.Test(0) {
		t.Fatal("resolution did not OR the peer color")
	}
}

func TestDCTResolveIncompletePanics(t *testing.T) {
	d := engine.NewDCT(2)
	d.Configure(5, []engine.PeerTask{{PEID: 0, Vertex: 1}})
	d.Check(1)
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete resolve did not panic")
		}
	}()
	d.ResolveInto(bitops.NewBitSet(8))
}

func TestColorLoaderMerge(t *testing.T) {
	colors := make([]uint16, 100)
	for i := range colors {
		colors[i] = uint16(i)
	}
	ch := mem.NewChannel(mem.DefaultDRAMConfig())
	l := engine.NewColorLoader(ch, colors, true)
	c1, t1 := l.Load(0, 0)
	if c1 != 0 || t1 <= 0 {
		t.Fatalf("first load = (%d,%d)", c1, t1)
	}
	// Vertex 31 shares block 0 → merged, 1 cycle.
	c2, t2 := l.Load(31, t1)
	if c2 != 31 || t2 != t1+1 {
		t.Fatalf("merged load = (%d,%d), want (31,%d)", c2, t2, t1+1)
	}
	// Vertex 32 is block 1 → DRAM (burst).
	_, t3 := l.Load(32, t2)
	if t3 <= t2+1 {
		t.Fatalf("block-crossing load too fast: %d", t3)
	}
	st := l.Stats()
	if st.Requests != 3 || st.DRAMReads != 2 || st.MergedReads != 1 {
		t.Fatalf("loader stats %+v", st)
	}
}

func TestColorLoaderNoMerge(t *testing.T) {
	colors := make([]uint16, 64)
	l := engine.NewColorLoader(mem.NewChannel(mem.DefaultDRAMConfig()), colors, false)
	l.Load(0, 0)
	l.Load(1, 0)
	if l.Stats().MergedReads != 0 || l.Stats().DRAMReads != 2 {
		t.Fatalf("merge-off stats %+v", l.Stats())
	}
}

func TestColorLoaderInvalidate(t *testing.T) {
	colors := make([]uint16, 64)
	l := engine.NewColorLoader(mem.NewChannel(mem.DefaultDRAMConfig()), colors, true)
	_, now := l.Load(0, 0)
	l.Invalidate()
	l.Load(1, now)
	if l.Stats().MergedReads != 0 {
		t.Fatal("merge served after invalidate")
	}
}

func TestColorLoaderOutOfRangePanics(t *testing.T) {
	l := engine.NewColorLoader(mem.NewChannel(mem.DefaultDRAMConfig()), make([]uint16, 4), true)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range load did not panic")
		}
	}()
	l.Load(10, 0)
}

func TestVertexReportAccounting(t *testing.T) {
	g := randomSortedGraph(t, 300, 2400, 6)
	pe, _ := singlePE(g, engine.AllOptions(), 0)
	now := int64(0)
	for v := 0; v < g.NumVertices(); v++ {
		rep, err := pe.ColorVertex(uint32(v), now, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Start != now {
			t.Fatalf("vertex %d start %d, want %d", v, rep.Start, now)
		}
		if rep.End < rep.Start {
			t.Fatalf("vertex %d end %d before start %d", v, rep.End, rep.Start)
		}
		if rep.EdgesTotal != g.Degree(graph.VertexID(v)) {
			t.Fatalf("vertex %d edges %d, want %d", v, rep.EdgesTotal, g.Degree(graph.VertexID(v)))
		}
		if got := rep.EdgesPruned + rep.EdgesDeferred; got > rep.EdgesTotal {
			t.Fatalf("vertex %d pruned+deferred %d > total %d", v, got, rep.EdgesTotal)
		}
		now = rep.End
	}
	st := pe.Stats()
	if st.Vertices != int64(g.NumVertices()) {
		t.Fatalf("stats vertices %d", st.Vertices)
	}
	if st.EdgesTotal != g.NumEdges() {
		t.Fatalf("stats edges %d, want %d", st.EdgesTotal, g.NumEdges())
	}
}

func TestPEStatsMerge(t *testing.T) {
	a := engine.PEStats{Vertices: 1, ComputeCycles: 10, EdgesTotal: 5, CacheHits: 2, BusyCycles: 20}
	b := engine.PEStats{Vertices: 2, ComputeCycles: 5, EdgesTotal: 3, DRAMColorReads: 1, BusyCycles: 7}
	a.Merge(b)
	if a.Vertices != 3 || a.ComputeCycles != 15 || a.EdgesTotal != 8 ||
		a.CacheHits != 2 || a.DRAMColorReads != 1 || a.BusyCycles != 27 {
		t.Fatalf("merge result %+v", a)
	}
}

func BenchmarkBWPEFullOpt(b *testing.B) {
	g := randomSortedGraph(b, 2000, 20000, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe, _ := singlePE(g, engine.AllOptions(), 0)
		now := int64(0)
		for v := 0; v < g.NumVertices(); v++ {
			rep, err := pe.ColorVertex(uint32(v), now, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			now = rep.End
		}
	}
}

// The flag-array baseline pays a read-modify-write per Stage-0 update
// and a linear Stage-1 scan; the bit-wise engine a single register OR
// and a constant Stage 1. On a clique — where many colors are in play —
// the asymmetry must at least cover one extra cycle per processed edge.
func TestStage0AccumulateCostAsymmetry(t *testing.T) {
	const k = 64
	var edges []graph.Edge
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
		}
	}
	g, err := graph.FromEdgeList(k, edges)
	if err != nil {
		t.Fatal(err)
	}
	run := func(bwc bool) int64 {
		opts := engine.Options{HDC: true, BWC: bwc, PUV: true, MGR: true}
		pe, _ := singlePE(g, opts, 0)
		now := int64(0)
		for v := 0; v < g.NumVertices(); v++ {
			rep, err := pe.ColorVertex(uint32(v), now, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			now = rep.End
		}
		return pe.Stats().ComputeCycles
	}
	with, without := run(true), run(false)
	processed := int64(k * (k - 1) / 2)
	if without-with < processed {
		t.Fatalf("non-BWC compute %d not at least %d cycles above BWC %d",
			without, processed, with)
	}
}
