package engine

import (
	"testing"

	"bitcolor/internal/cache"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

func TestPingPongFillBasics(t *testing.T) {
	ch := mem.NewChannel(mem.DefaultDRAMConfig())
	b := NewPingPongBuffer(ch, 16)
	// Edges [0,20): blocks 0 and 1.
	done := b.Fill(0, 20, 0)
	if done <= 0 {
		t.Fatal("no fetch time")
	}
	st := b.Stats()
	if st.BlocksFetched != 2 || st.Fills != 1 {
		t.Fatalf("stats %+v", st)
	}
	// Edges [20,30): block 1 already resident → zero fetches.
	done2 := b.Fill(20, 30, done)
	if done2 != done {
		t.Fatalf("resident fill cost cycles: %d -> %d", done, done2)
	}
	if b.Stats().BlocksReused != 1 {
		t.Fatal("reuse not recorded")
	}
	// Empty range costs nothing.
	if b.Fill(30, 30, done2) != done2 {
		t.Fatal("empty fill cost cycles")
	}
}

func TestPingPongInvalidate(t *testing.T) {
	ch := mem.NewChannel(mem.DefaultDRAMConfig())
	b := NewPingPongBuffer(ch, 16)
	b.Fill(0, 16, 0)
	b.Invalidate()
	b.Fill(0, 16, 100)
	if b.Stats().BlocksReused != 0 {
		t.Fatal("reuse after invalidate")
	}
	if b.Stats().BlocksFetched != 2 {
		t.Fatalf("fetched %d", b.Stats().BlocksFetched)
	}
}

func TestPingPongFillVertex(t *testing.T) {
	g, err := graph.FromEdgeList(40, func() []graph.Edge {
		var e []graph.Edge
		for i := 1; i < 40; i++ {
			e = append(e, graph.Edge{U: 0, V: graph.VertexID(i)})
		}
		return e
	}())
	if err != nil {
		t.Fatal(err)
	}
	b := NewPingPongBuffer(mem.NewChannel(mem.DefaultDRAMConfig()), 16)
	done := b.FillVertex(g, 0, 0)
	if done <= 0 {
		t.Fatal("vertex fill free")
	}
	// Vertex 0 has 39 edges → 3 blocks.
	if b.Stats().BlocksFetched != 3 {
		t.Fatalf("fetched %d blocks, want 3", b.Stats().BlocksFetched)
	}
}

func TestWriterRouting(t *testing.T) {
	colors := make([]uint16, 100)
	hvc := cache.NewHVC(cache.NewBitSelectCache(1, 10), 10)
	ch := mem.NewChannel(mem.DefaultDRAMConfig())
	w := NewWriter(colors, hvc, ch, 0)
	if onChip := w.Write(5, 7, 0); !onChip {
		t.Fatal("resident write went to DRAM")
	}
	if onChip := w.Write(50, 9, 0); onChip {
		t.Fatal("non-resident write went on-chip")
	}
	if colors[5] != 7 || colors[50] != 9 {
		t.Fatal("color array not updated")
	}
	st := w.Stats()
	if st.CacheWrites != 1 || st.DRAMWrites != 1 {
		t.Fatalf("stats %+v", st)
	}
	if ch.Stats().Writes != 1 {
		t.Fatal("DRAM write not issued")
	}
	if c, ok := hvc.Read(0, 5); !ok || c != 7 {
		t.Fatal("cache readback failed")
	}
}

func TestWriterWithoutCache(t *testing.T) {
	colors := make([]uint16, 10)
	ch := mem.NewChannel(mem.DefaultDRAMConfig())
	w := NewWriter(colors, nil, ch, 0)
	if onChip := w.Write(3, 2, 0); onChip {
		t.Fatal("no-cache writer claimed on-chip")
	}
	if colors[3] != 2 {
		t.Fatal("color lost")
	}
}

func TestWriterBoundsPanics(t *testing.T) {
	w := NewWriter(make([]uint16, 4), nil, mem.NewChannel(mem.DefaultDRAMConfig()), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range write did not panic")
		}
	}()
	w.Write(10, 1, 0)
}

func TestNewWriterNilChannelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil channel accepted")
		}
	}()
	NewWriter(make([]uint16, 4), nil, nil, 0)
}
