package engine

import (
	"fmt"

	"bitcolor/internal/bitops"
)

// DCT is the Data Conflict Table of §4.3: one row per peer BWPE, tracking
// which vertex that peer is coloring, whether it has finished, its color
// result in bit form, and whether the current vertex conflicts with it.
// The table is register-based in hardware so the final parallel OR over
// all conflict colors completes in one cycle.
//
// Priority rule: the paper stipulates that when two PEs conflict, the PE
// with the smaller index completes first. Under the §4.6 schedule PE
// order and vertex order coincide within a dispatch wave, but across
// waves a lower-numbered vertex can sit on a higher-numbered PE, so this
// implementation generalizes the rule to *vertex* order: a BWPE only ever
// defers on in-flight peers coloring a smaller vertex index. The wait
// graph then follows the total vertex order and is deadlock-free, and
// the result equals sequential greedy.
type DCT struct {
	rows []DCTRow
}

// DCTRow mirrors the five-row table of the paper (transposed: one entry
// per peer PE).
type DCTRow struct {
	PEID     int            // PE index of the peer
	Vertex   uint32         // v_id being colored by the peer
	Valid    bool           // peer has completed coloring
	Color    *bitops.BitSet // peer's color result in bit form
	Conflict bool           // current vertex conflicts with the peer
}

// NewDCT builds a table with capacity for `peers` peer engines.
func NewDCT(peers int) *DCT {
	if peers < 0 {
		panic(fmt.Sprintf("engine: negative peer count %d", peers))
	}
	return &DCT{rows: make([]DCTRow, 0, peers)}
}

// PeerTask describes what another BWPE is working on.
type PeerTask struct {
	PEID   int
	Vertex uint32
}

// Defers is the single defer/forward decision shared by the simulator's
// conflict table and the host DCT engine (internal/coloring): vertex self
// defers on an in-flight peer vertex iff the peer's index is smaller
// (lower index wins). Because every wait edge points to a strictly
// smaller vertex, the wait graph follows the total vertex order and can
// never cycle — the deadlock-freedom argument both implementations rely
// on — and resolving waits in that order reproduces sequential greedy
// exactly.
func Defers(self, peer uint32) bool { return peer < self }

// Configure loads the table for a new vertex: the Task Dispatch Unit
// supplies the vertices currently in flight on other BWPEs. Only peers
// this vertex Defers on (smaller vertex index — the priority rule above)
// are recorded; larger in-flight vertices are uncolored from this
// vertex's perspective and are handled by pruning.
func (d *DCT) Configure(selfVertex uint32, peers []PeerTask) {
	d.rows = d.rows[:0]
	for _, p := range peers {
		if !Defers(selfVertex, p.Vertex) {
			continue
		}
		d.rows = append(d.rows, DCTRow{PEID: p.PEID, Vertex: p.Vertex})
	}
}

// Check implements Step ③: if v_des matches a peer's in-flight vertex,
// the row's conflict flag is set and the edge is deferred. Reports
// whether a conflict was recorded.
func (d *DCT) Check(vdes uint32) bool {
	for i := range d.rows {
		if d.rows[i].Vertex == vdes {
			d.rows[i].Conflict = true
			return true
		}
	}
	return false
}

// Complete implements Step ⑨ seen from the receiving side: the peer PE
// forwards its finished color, setting valid and the color row.
func (d *DCT) Complete(peID int, color *bitops.BitSet) {
	for i := range d.rows {
		if d.rows[i].PEID == peID {
			d.rows[i].Valid = true
			d.rows[i].Color = color
			return
		}
	}
}

// ConflictPeers returns the PE IDs of all rows flagged as conflicts.
func (d *DCT) ConflictPeers() []int {
	var out []int
	for i := range d.rows {
		if d.rows[i].Conflict {
			out = append(out, d.rows[i].PEID)
		}
	}
	return out
}

// ConflictCount returns the number of rows flagged as conflicts.
func (d *DCT) ConflictCount() int {
	n := 0
	for i := range d.rows {
		if d.rows[i].Conflict {
			n++
		}
	}
	return n
}

// AllConflictsValid reports whether every conflicting peer has forwarded
// its result (the Step ⑥ wait condition).
func (d *DCT) AllConflictsValid() bool {
	for i := range d.rows {
		if d.rows[i].Conflict && !d.rows[i].Valid {
			return false
		}
	}
	return true
}

// ResolveInto ORs all valid conflict colors into state — the paper's
// one-cycle parallel OR over the register-based table (Step ⑥). It
// panics if called before AllConflictsValid holds, catching scheduler
// bugs in the simulator.
func (d *DCT) ResolveInto(state *bitops.BitSet) {
	for i := range d.rows {
		if !d.rows[i].Conflict {
			continue
		}
		if !d.rows[i].Valid {
			panic(fmt.Sprintf("engine: resolving DCT with incomplete peer PE%d", d.rows[i].PEID))
		}
		state.OrWith(d.rows[i].Color)
	}
}

// Rows exposes the table for tests and the dispatcher.
func (d *DCT) Rows() []DCTRow { return d.rows }
