package engine

import (
	"fmt"

	"bitcolor/internal/bitops"
	"bitcolor/internal/cache"
	"bitcolor/internal/graph"
	"bitcolor/internal/mem"
)

// Options toggles the paper's four optimization techniques (the Fig 11
// ablation axes).
type Options struct {
	// HDC: high-degree vertex cache — colors of vertices below the
	// threshold are read/written on-chip.
	HDC bool
	// BWC: bit-wise coloring — Stage 1 is O(1) instead of a linear scan.
	BWC bool
	// MGR: merge DRAM reads — the Color Loader reuses the last block.
	MGR bool
	// PUV: prune uncolored vertices — neighbors above the current index
	// are skipped; with sorted edges the whole tail is skipped.
	PUV bool
}

// AllOptions enables every optimization (the full BitColor design).
func AllOptions() Options { return Options{HDC: true, BWC: true, MGR: true, PUV: true} }

// Config parameterizes a BWPE.
type Config struct {
	Options
	// MaxColors bounds the palette (paper: 1024).
	MaxColors int
	// EdgesPerBlock is how many 32-bit edge words fit one DRAM block.
	EdgesPerBlock int
	// SortedEdges declares that adjacency lists are ascending, enabling
	// tail pruning and read merging guarantees.
	SortedEdges bool
	// StartupCycles is the fixed per-vertex pipeline cost: loading the
	// engine parameters from the dispatcher, configuring the conflict
	// table, priming the ping-pong buffers and draining the coloring
	// pipeline (Fig 7's Step ① setup plus fill/drain).
	StartupCycles int64
}

// DefaultStartupCycles is the per-vertex pipeline fill/drain cost.
const DefaultStartupCycles = 14

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Options:       AllOptions(),
		MaxColors:     1024,
		EdgesPerBlock: mem.BlockBits / 32, // 16 edges per 512-bit block
		SortedEdges:   true,
		StartupCycles: DefaultStartupCycles,
	}
}

// VertexReport is the outcome of coloring one vertex on a BWPE.
type VertexReport struct {
	Vertex uint32
	Color  uint16
	// Start and End are the simulated cycles bounding the vertex.
	Start, End int64
	// ComputeCycles are pipeline cycles spent on edge issue, bit
	// operations, Stage 1 and Stage 2 (excluding the fixed per-vertex
	// startup, reported separately).
	ComputeCycles int64
	// StartupCycles is the fixed per-vertex pipeline fill/drain cost.
	StartupCycles int64
	// DRAMStallCycles are cycles the coloring pipeline waited on color
	// reads from DRAM.
	DRAMStallCycles int64
	// ConflictWaitCycles are cycles spent waiting on conflicting peers.
	ConflictWaitCycles int64
	// EdgeFetchCycles is the (overlapped) cost of streaming the edge list
	// through the ping-pong buffers.
	EdgeFetchCycles int64
	// Edge accounting.
	EdgesTotal, EdgesPruned, EdgesDeferred int
	CacheHits                              int64
	DRAMColorReads                         int64
	MergedReads                            int64
}

// PEStats aggregates reports over a run.
type PEStats struct {
	Vertices           int64
	ComputeCycles      int64
	StartupCycles      int64
	DRAMStallCycles    int64
	ConflictWaitCycles int64
	EdgeFetchCycles    int64
	EdgesTotal         int64
	EdgesPruned        int64
	EdgesDeferred      int64
	CacheHits          int64
	DRAMColorReads     int64
	MergedReads        int64
	BusyCycles         int64
}

// Add accumulates a vertex report.
func (s *PEStats) Add(r VertexReport) {
	s.Vertices++
	s.ComputeCycles += r.ComputeCycles
	s.StartupCycles += r.StartupCycles
	s.DRAMStallCycles += r.DRAMStallCycles
	s.ConflictWaitCycles += r.ConflictWaitCycles
	s.EdgeFetchCycles += r.EdgeFetchCycles
	s.EdgesTotal += int64(r.EdgesTotal)
	s.EdgesPruned += int64(r.EdgesPruned)
	s.EdgesDeferred += int64(r.EdgesDeferred)
	s.CacheHits += r.CacheHits
	s.DRAMColorReads += r.DRAMColorReads
	s.MergedReads += r.MergedReads
	s.BusyCycles += r.End - r.Start
}

// Merge accumulates another PE's totals.
func (s *PEStats) Merge(o PEStats) {
	s.Vertices += o.Vertices
	s.ComputeCycles += o.ComputeCycles
	s.StartupCycles += o.StartupCycles
	s.DRAMStallCycles += o.DRAMStallCycles
	s.ConflictWaitCycles += o.ConflictWaitCycles
	s.EdgeFetchCycles += o.EdgeFetchCycles
	s.EdgesTotal += o.EdgesTotal
	s.EdgesPruned += o.EdgesPruned
	s.EdgesDeferred += o.EdgesDeferred
	s.CacheHits += o.CacheHits
	s.DRAMColorReads += o.DRAMColorReads
	s.MergedReads += o.MergedReads
	s.BusyCycles += o.BusyCycles
}

// PeerResult lets the simulator reveal a conflicting peer's eagerly
// computed outcome: the cycle its result is forwarded and the color.
type PeerResult func(peID int) (ready int64, color uint16)

// BWPE is one bit-wise processing engine. It owns a read port and a
// write port of the shared multi-port color cache, a Color Loader on its
// logical DRAM channel for low-degree colors, a separate edge-stream
// channel feeding the ping-pong buffers, and a Data Conflict Table.
type BWPE struct {
	ID int

	g      *graph.CSR
	colors []uint16 // authoritative color array (shared across PEs)

	hvc      *cache.HVC // nil when HDC is off
	loader   *ColorLoader
	pingpong *PingPongBuffer
	writer   *Writer
	codec    *bitops.ColorCodec
	state    *bitops.BitSet
	dct      *DCT
	cfg      Config

	stats PEStats
}

// NewBWPE wires up an engine. hvc may be nil only when cfg.HDC is false.
func NewBWPE(id int, g *graph.CSR, colors []uint16, hvc *cache.HVC,
	colorChannel, edgeChannel *mem.Channel, peers int, cfg Config) *BWPE {
	if cfg.MaxColors <= 0 {
		panic(fmt.Sprintf("engine: MaxColors %d must be positive", cfg.MaxColors))
	}
	if cfg.EdgesPerBlock <= 0 {
		cfg.EdgesPerBlock = mem.BlockBits / 32
	}
	if cfg.HDC && hvc == nil {
		panic("engine: HDC enabled without a cache")
	}
	return &BWPE{
		ID:       id,
		g:        g,
		colors:   colors,
		hvc:      hvc,
		loader:   NewColorLoader(colorChannel, colors, cfg.MGR),
		pingpong: NewPingPongBuffer(edgeChannel, cfg.EdgesPerBlock),
		writer:   NewWriter(colors, hvc, colorChannel, id),
		codec:    bitops.NewColorCodec(cfg.MaxColors),
		state:    bitops.NewBitSet(cfg.MaxColors),
		dct:      NewDCT(peers),
		cfg:      cfg,
	}
}

// Loader exposes the Color Loader for stats.
func (pe *BWPE) Loader() *ColorLoader { return pe.loader }

// Stats returns the accumulated totals.
func (pe *BWPE) Stats() PEStats { return pe.stats }

// DCT exposes the conflict table for tests.
func (pe *BWPE) DCT() *DCT { return pe.dct }

// ColorVertex colors v starting at cycle `now`, with `peers` describing
// vertices in flight on other engines and peerResult revealing a
// conflicting peer's completion. It returns the vertex report (and a
// non-nil error if the palette is exhausted); the authoritative color
// array is updated before returning.
//
// The cycle model: the coloring pipeline issues one edge per cycle when
// color data is on-chip (Fig 7's two pipelines are fully overlapped);
// a DRAM color read stalls the pipeline for the channel latency minus
// the merge fast path; Stage 1 costs 1+3 cycles with BWC and a linear
// scan plus flag clear without; Stage 2 costs one cycle. Edge streaming
// through the ping-pong buffers proceeds concurrently, so the vertex
// occupies the engine for max(pipeline time, edge fetch time).
func (pe *BWPE) ColorVertex(v uint32, now int64, peers []PeerTask, peerResult PeerResult) (VertexReport, error) {
	r := VertexReport{Vertex: v, Start: now}
	pe.state.Reset()
	pe.dct.Configure(v, peers)

	adj := pe.g.Neighbors(v)
	r.EdgesTotal = len(adj)

	// Edge streaming through the ping-pong buffer pair, overlapped with
	// processing.
	if len(adj) > 0 {
		r.EdgeFetchCycles = pe.pingpong.FillVertex(pe.g, v, now) - now
	}

	t := now + pe.cfg.StartupCycles
	r.StartupCycles = pe.cfg.StartupCycles
	highestSeen := 0 // highest color number observed (for non-BWC Stage 1 cost)
	for _, w := range adj {
		// One pipeline cycle: prune compare + DCT check + threshold
		// compare (Steps ②-④ share the issue slot).
		t++
		r.ComputeCycles++
		if pe.cfg.PUV && w > v {
			if pe.cfg.SortedEdges {
				// Tail pruning: every following destination is larger.
				r.EdgesPruned += countFrom(adj, w)
				break
			}
			r.EdgesPruned++
			continue
		}
		if pe.dct.Check(w) {
			r.EdgesDeferred++
			continue
		}
		var cw uint16
		cached := false
		if pe.cfg.HDC {
			if c2, ok := pe.hvc.Read(pe.ID, w); ok {
				// Single-cycle cache read, hidden in the pipeline slot.
				cw = c2
				cached = true
				r.CacheHits++
			}
		}
		if !cached {
			color, done := pe.loader.Load(w, t)
			if done > t {
				r.DRAMStallCycles += done - t
				t = done
			}
			cw = color
			r.DRAMColorReads++
		}
		// Stage 0 accumulate. With BWC the Num2Bit lookup feeds a
		// single-cycle register OR; the flag-array baseline instead does
		// a read-modify-write on the BRAM-resident flag array (address
		// decode + two port operations), costing an extra cycle.
		accum := int64(1)
		if !pe.cfg.BWC {
			accum = 2
		}
		t += accum
		r.ComputeCycles += accum
		pe.codec.Decompress(cw, pe.state)
		if int(cw) > highestSeen {
			highestSeen = int(cw)
		}
	}
	// Reconcile loader-side merge stats into the report.
	ls := pe.loader.Stats()
	r.MergedReads = ls.MergedReads - pe.stats.MergedReads

	// Deferred conflicts: wait for every conflicting peer, then one
	// parallel OR over the register table.
	if n := pe.dct.ConflictCount(); n > 0 {
		for _, peID := range pe.dct.ConflictPeers() {
			ready, color := peerResult(peID)
			if ready > t {
				r.ConflictWaitCycles += ready - t
				t = ready
			}
			pe.dct.Complete(peID, pe.codec.OneHot(color))
			if int(color) > highestSeen {
				highestSeen = int(color)
			}
		}
		if !pe.dct.AllConflictsValid() {
			panic("engine: conflict peers incomplete after wait")
		}
		pe.dct.ResolveInto(pe.state)
		t++
		r.ComputeCycles++
	}

	// Stage 1: color determination.
	var color uint16
	if pe.cfg.BWC {
		c, cycles := pe.codec.FirstFree(pe.state)
		color = c
		t += int64(cycles)
		r.ComputeCycles += int64(cycles)
	} else {
		// Linear scan to the first free color + flag clear, as in
		// Algorithm 1.
		c := pe.state.FirstZero() + 1
		if c > pe.cfg.MaxColors {
			c = 0
		}
		color = uint16(c)
		scan := int64(c)
		if c == 0 {
			scan = int64(pe.cfg.MaxColors)
		}
		clear := int64(highestSeen) + 1
		t += scan + clear
		r.ComputeCycles += scan + clear
	}
	if color == 0 {
		return r, fmt.Errorf("engine: palette exhausted at vertex %d (max %d colors)", v, pe.cfg.MaxColors)
	}

	// Stage 2: color update through the Writer module.
	t++
	r.ComputeCycles++
	if onChip := pe.writer.Write(v, color, t); !onChip {
		// A posted DRAM write into the loader's held block would
		// otherwise leave a stale merge register.
		pe.loader.Invalidate()
	}
	r.Color = color

	// The engine is occupied for the longer of the coloring pipeline and
	// the edge stream.
	end := t
	if fetchEnd := now + r.EdgeFetchCycles; fetchEnd > end {
		end = fetchEnd
	}
	r.End = end
	pe.stats.Add(r)
	return r, nil
}

// countFrom returns how many entries of adj remain from the first
// occurrence of w onward (w is the entry that triggered tail pruning).
func countFrom(adj []graph.VertexID, w graph.VertexID) int {
	for i, x := range adj {
		if x == w {
			return len(adj) - i
		}
	}
	return 0
}
