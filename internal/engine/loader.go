// Package engine implements the bit-wise processing engine (BWPE) of
// BitColor (paper §4.2, Fig 7) and its two support modules: the Color
// Loader that merges DRAM reads for low-degree vertices (§4.5, Fig 9) and
// the Data Conflict Table that defers conflicting neighbor reads so
// adjacent vertices can be colored in parallel (§4.3).
package engine

import (
	"fmt"

	"bitcolor/internal/mem"
)

// ColorLoader fetches low-degree-vertex colors from a DRAM channel in
// 512-bit blocks, caching the last requested block so that consecutive
// requests to the same block (guaranteed common by ascending edge order)
// skip the DRAM access — the paper's DRAM Read Merge.
type ColorLoader struct {
	channel *mem.Channel
	// colors is the backing store: the authoritative color array living
	// "in DRAM". The loader reads it only through block-granularity
	// accounting.
	colors []uint16
	// merge enables the last-block reuse (the MGR optimization). When
	// false every request pays a DRAM access, as in Fig 5(a)/(b).
	merge     bool
	lastBlock int64
	stats     LoaderStats
}

// LoaderStats counts Color Loader activity.
type LoaderStats struct {
	Requests    int64 // color requests received
	DRAMReads   int64 // block reads actually issued
	MergedReads int64 // requests served from the last-block register
}

// NewColorLoader builds a loader over the shared color array and DRAM
// channel.
func NewColorLoader(channel *mem.Channel, colors []uint16, merge bool) *ColorLoader {
	if channel == nil {
		panic("engine: nil DRAM channel")
	}
	return &ColorLoader{channel: channel, colors: colors, merge: merge, lastBlock: -1}
}

// Load returns the color of vertex v and the cycle at which it is
// available, given the request is issued at cycle now.
func (l *ColorLoader) Load(v uint32, now int64) (uint16, int64) {
	if int(v) >= len(l.colors) {
		panic(fmt.Sprintf("engine: color load for vertex %d beyond array of %d", v, len(l.colors)))
	}
	l.stats.Requests++
	block, _ := mem.ColorBlock(v)
	if l.merge && block == l.lastBlock {
		// Step ②/⑤ of Fig 9: index equals the last request; reuse the
		// held block. The bits-select costs one pipeline cycle.
		l.stats.MergedReads++
		return l.colors[v], now + 1
	}
	done := l.channel.ReadBlock(block, now)
	l.lastBlock = block
	l.stats.DRAMReads++
	return l.colors[v], done
}

// Invalidate clears the last-block register. The simulator calls it when
// a color in the held block is rewritten, so the loader never serves a
// stale color. (In the paper the Writer and the Color Loader share the
// channel; the same hazard is avoided because a vertex's color is written
// exactly once and pruning keeps not-yet-written colors out of the read
// stream — but the simulator checks the property rather than assuming it.)
func (l *ColorLoader) Invalidate() { l.lastBlock = -1 }

// Stats returns loader counters.
func (l *ColorLoader) Stats() LoaderStats { return l.stats }

// MergeEnabled reports whether DRAM read merging is on.
func (l *ColorLoader) MergeEnabled() bool { return l.merge }
