package gen

import (
	"testing"

	"bitcolor/internal/graph"
)

func checkWellFormed(t *testing.T, g *graph.CSR, name string) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if g.HasSelfLoops() {
		t.Fatalf("%s: self loops", name)
	}
	if !g.IsUndirected() {
		t.Fatalf("%s: not symmetric", name)
	}
	if !g.EdgesSorted() {
		t.Fatalf("%s: adjacency not sorted", name)
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(10, 8, 0.57, 0.19, 0.19, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "rmat")
	if g.NumVertices() != 1024 {
		t.Fatalf("vertices = %d, want 1024", g.NumVertices())
	}
	s := graph.ComputeStats(g)
	if s.GiniDegree < 0.3 {
		t.Fatalf("RMAT Gini = %.2f, want heavy-tailed (>0.3)", s.GiniDegree)
	}
	if s.MaxDegree < 10*int(s.MeanDegree) {
		t.Fatalf("RMAT max degree %d not skewed vs mean %.1f", s.MaxDegree, s.MeanDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, _ := RMAT(8, 8, 0.57, 0.19, 0.19, 42)
	b, _ := RMAT(8, 8, 0.57, 0.19, 0.19, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	c, _ := RMAT(8, 8, 0.57, 0.19, 0.19, 43)
	if a.NumEdges() == c.NumEdges() && a.Edges[0] == c.Edges[0] && a.Edges[len(a.Edges)-1] == c.Edges[len(c.Edges)-1] {
		t.Log("different seeds produced suspiciously similar graphs (not fatal)")
	}
}

func TestRMATRejectsBadParams(t *testing.T) {
	if _, err := RMAT(-1, 8, 0.5, 0.2, 0.2, 1); err == nil {
		t.Fatal("negative scale accepted")
	}
	if _, err := RMAT(5, 8, 0.5, 0.3, 0.3, 1); err == nil {
		t.Fatal("probabilities summing >= 1 accepted")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g, err := BarabasiAlbert(2000, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "ba")
	s := graph.ComputeStats(g)
	if s.MinDegree < 1 {
		t.Fatalf("BA has isolated vertices (min degree %d)", s.MinDegree)
	}
	if s.MeanDegree < 8 || s.MeanDegree > 12 {
		t.Fatalf("BA mean degree = %.1f, want ~10", s.MeanDegree)
	}
	if s.MaxDegree < 5*int(s.MeanDegree) {
		t.Fatalf("BA not skewed: max %d vs mean %.1f", s.MaxDegree, s.MeanDegree)
	}
}

func TestBarabasiAlbertSmall(t *testing.T) {
	g, err := BarabasiAlbert(3, 5, 1) // k clipped to n-1
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "ba-small")
	if _, err := BarabasiAlbert(0, 1, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(1000, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "er")
	s := graph.ComputeStats(g)
	if s.GiniDegree > 0.3 {
		t.Fatalf("ER Gini = %.2f, want low skew", s.GiniDegree)
	}
}

func TestRoadGrid(t *testing.T) {
	g, err := RoadGrid(50, 40, 0.05, 0.08, 11)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "road")
	if g.NumVertices() != 2000 {
		t.Fatalf("vertices = %d, want 2000", g.NumVertices())
	}
	s := graph.ComputeStats(g)
	if s.MaxDegree > 8 {
		t.Fatalf("road max degree = %d, want bounded (<=8)", s.MaxDegree)
	}
	if s.GiniDegree > 0.25 {
		t.Fatalf("road Gini = %.2f, want near-regular", s.GiniDegree)
	}
}

func TestEgoNet(t *testing.T) {
	g, err := EgoNet(4, 50, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "ego")
	s := graph.ComputeStats(g)
	// Hubs must dominate: they touch a full circle each.
	if s.MaxDegree < 50 {
		t.Fatalf("ego hub degree = %d, want >= 50", s.MaxDegree)
	}
}

func TestCommunity(t *testing.T) {
	g, err := Community(20, 50, 3, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "community")
	if g.NumVertices() != 1000 {
		t.Fatalf("vertices = %d, want 1000", g.NumVertices())
	}
}

func TestPowerLawFixed(t *testing.T) {
	g, err := PowerLawFixed(2000, 10000, 0.8, 13)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, g, "powerlaw")
	s := graph.ComputeStats(g)
	if s.GiniDegree < 0.3 {
		t.Fatalf("power-law Gini = %.2f, want skew", s.GiniDegree)
	}
	// alpha=0 degenerates to uniform.
	u, err := PowerLawFixed(2000, 10000, 0, 13)
	if err != nil {
		t.Fatal(err)
	}
	su := graph.ComputeStats(u)
	if su.GiniDegree >= s.GiniDegree {
		t.Fatalf("uniform Gini %.2f >= power-law Gini %.2f", su.GiniDegree, s.GiniDegree)
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 10 {
		t.Fatalf("registry has %d datasets, want 10", len(reg))
	}
	want := []string{"EF", "GD", "CD", "CA", "CL", "RC", "RP", "RT", "CO", "CF"}
	for i, d := range reg {
		if d.Abbrev != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, d.Abbrev, want[i])
		}
		if d.Name == "" || d.Category == "" || d.PaperNodes == 0 || d.PaperEdges == 0 {
			t.Fatalf("dataset %s missing metadata: %+v", d.Abbrev, d)
		}
		if d.Build == nil {
			t.Fatalf("dataset %s has no builder", d.Abbrev)
		}
	}
}

func TestByAbbrev(t *testing.T) {
	d, err := ByAbbrev("RC")
	if err != nil || d.Name != "roadNet-CA" {
		t.Fatalf("ByAbbrev(RC) = %+v, %v", d, err)
	}
	if _, err := ByAbbrev("XX"); err == nil {
		t.Fatal("unknown abbrev accepted")
	}
}

func TestSmallRegistryBuildsAll(t *testing.T) {
	for _, d := range SmallRegistry() {
		d := d
		t.Run(d.Abbrev, func(t *testing.T) {
			t.Parallel()
			g, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			checkWellFormed(t, g, d.Abbrev)
			if g.NumVertices() < 100 {
				t.Fatalf("%s too small: %d vertices", d.Abbrev, g.NumVertices())
			}
			if d.Name == "" || d.Category == "" {
				t.Fatalf("%s metadata not inherited", d.Abbrev)
			}
		})
	}
}

// Category shape checks: road networks near-regular, social heavy-tailed.
func TestCategoryShapes(t *testing.T) {
	for _, d := range SmallRegistry() {
		g, err := d.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", d.Abbrev, err)
		}
		s := graph.ComputeStats(g)
		switch d.Category {
		case "Road network":
			if s.GiniDegree > 0.3 {
				t.Errorf("%s (road) Gini = %.2f, want low", d.Abbrev, s.GiniDegree)
			}
		case "Social network":
			if d.Abbrev != "EF" && s.GiniDegree < 0.2 {
				t.Errorf("%s (social) Gini = %.2f, want skewed", d.Abbrev, s.GiniDegree)
			}
		}
	}
}

func BenchmarkRMATScale14(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RMAT(14, 8, 0.57, 0.19, 0.19, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestWattsStrogatz(t *testing.T) {
	// beta=0: pure ring lattice, perfectly regular.
	lattice, err := WattsStrogatz(1000, 6, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, lattice, "ws-lattice")
	s := graph.ComputeStats(lattice)
	if s.MinDegree != 6 || s.MaxDegree != 6 {
		t.Fatalf("lattice degrees [%d,%d], want exactly 6", s.MinDegree, s.MaxDegree)
	}
	// beta=0.3: small world, still low variance.
	sw, err := WattsStrogatz(1000, 6, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkWellFormed(t, sw, "ws-smallworld")
	if graph.ComputeStats(sw).GiniDegree > 0.2 {
		t.Fatal("small-world graph too skewed")
	}
}

func TestWattsStrogatzRejectsBadParams(t *testing.T) {
	for _, c := range []struct {
		n, k int
		beta float64
	}{
		{0, 2, 0.1}, {10, 3, 0.1}, {10, 0, 0.1}, {4, 6, 0.1}, {10, 2, 1.5}, {10, 2, -0.1},
	} {
		if _, err := WattsStrogatz(c.n, c.k, c.beta, 1); err == nil {
			t.Errorf("params %+v accepted", c)
		}
	}
}

func TestWattsStrogatzLocalityDial(t *testing.T) {
	// Rewiring destroys index locality: block reuse at beta=0 must beat
	// beta=0.9. (Uses the same block geometry as the DRAM model.)
	lattice, _ := WattsStrogatz(4000, 6, 0, 2)
	random, _ := WattsStrogatz(4000, 6, 0.9, 2)
	spreadL := averageNeighborDistance(lattice)
	spreadR := averageNeighborDistance(random)
	if spreadL >= spreadR {
		t.Fatalf("lattice spread %.1f >= rewired %.1f", spreadL, spreadR)
	}
}

func averageNeighborDistance(g *graph.CSR) float64 {
	var sum float64
	var count int64
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			d := int64(w) - int64(v)
			if d < 0 {
				d = -d
			}
			sum += float64(d)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
