// Package gen generates synthetic graphs whose degree structure matches
// the categories of the paper's SNAP datasets (Table 3): heavy-tailed
// social networks, near-planar bounded-degree road networks, collaboration
// and product co-purchase networks, and small dense ego networks.
//
// The real SNAP files are not redistributable inside this repository, so
// the experiment harness runs on these generators by default and accepts
// real edge-list files via the loaders in internal/graph when available.
// What BitColor's optimizations exploit is structure, not identity:
// degree skew drives the high-degree cache, index locality drives DRAM
// read merging, and adjacency density drives conflict rates — all of which
// the generators reproduce per category.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bitcolor/internal/graph"
)

// RMAT generates a recursive-matrix (Kronecker-like) graph with 2^scale
// vertices and approximately edgeFactor*2^scale undirected edges, using
// the standard (a,b,c,d) partition probabilities. RMAT graphs have the
// heavy-tailed degree distribution of large social networks such as
// com-LiveJournal, com-Orkut and com-Friendster.
func RMAT(scale int, edgeFactor int, a, b, c float64, seed int64) (*graph.CSR, error) {
	if scale < 0 || scale > 28 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of range [0,28]", scale)
	}
	if a <= 0 || b < 0 || c < 0 || a+b+c >= 1 {
		return nil, fmt.Errorf("gen: RMAT probabilities (%.2f,%.2f,%.2f) invalid", a, b, c)
	}
	n := 1 << uint(scale)
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	return graph.FromEdgeList(n, edges)
}

// BarabasiAlbert generates an n-vertex preferential-attachment graph where
// each new vertex attaches to k existing vertices. The result is a
// connected power-law graph resembling collaboration networks (com-DBLP)
// and mid-size social networks (gemsec-Deezer).
func BarabasiAlbert(n, k int, seed int64) (*graph.CSR, error) {
	if n <= 0 || k <= 0 {
		return nil, fmt.Errorf("gen: BarabasiAlbert n=%d k=%d must be positive", n, k)
	}
	if k >= n {
		k = n - 1
	}
	rng := rand.New(rand.NewSource(seed))
	// Repeated-endpoint list implements preferential attachment in O(1)
	// per draw.
	targets := make([]graph.VertexID, 0, 2*n*k)
	edges := make([]graph.Edge, 0, n*k)
	// Seed clique over the first k+1 vertices.
	for i := 0; i <= k && i < n; i++ {
		for j := 0; j < i; j++ {
			edges = append(edges, graph.Edge{U: graph.VertexID(i), V: graph.VertexID(j)})
			targets = append(targets, graph.VertexID(i), graph.VertexID(j))
		}
	}
	relabel := makeRelabel(n, rng)
	for v := k + 1; v < n; v++ {
		chosen := map[graph.VertexID]bool{}
		for len(chosen) < k {
			var t graph.VertexID
			if len(targets) == 0 {
				t = graph.VertexID(rng.Intn(v))
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if int(t) == v || chosen[t] {
				// Resample; bounded because v > k distinct targets exist.
				if len(chosen) > 0 && rng.Float64() < 0.01 {
					t = graph.VertexID(rng.Intn(v))
					if int(t) == v || chosen[t] {
						continue
					}
				} else {
					continue
				}
			}
			chosen[t] = true
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: t})
			targets = append(targets, graph.VertexID(v), t)
		}
	}
	// Relabel vertices randomly: preferential attachment produces edges
	// in insertion order, which is an artificially favorable coloring
	// order (close to a perfect elimination order). Real SNAP IDs come
	// from crawl order and carry no such structure, so the stand-in
	// should not either.
	for i := range edges {
		edges[i].U = relabel[edges[i].U]
		edges[i].V = relabel[edges[i].V]
	}
	return graph.FromEdgeList(n, edges)
}

// makeRelabel returns a random bijection over [0,n).
func makeRelabel(n int, rng *rand.Rand) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(i)
	}
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ErdosRenyi generates a G(n, m) uniform random graph with n vertices and
// about m undirected edges. Used as a structure-free control in ablations.
func ErdosRenyi(n int, m int, seed int64) (*graph.CSR, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi n=%d m=%d invalid", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdgeList(n, edges)
}

// RoadGrid generates a rows×cols lattice with diagonal shortcuts added
// with probability pDiag and a fraction pDrop of lattice edges removed.
// The result is a near-planar bounded-degree graph with the structure of
// the paper's road networks (roadNet-CA/PA/TX): tiny maximum degree,
// almost no degree skew, strong index locality after row-major numbering.
func RoadGrid(rows, cols int, pDiag, pDrop float64, seed int64) (*graph.CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: RoadGrid %dx%d invalid", rows, cols)
	}
	rng := rand.New(rand.NewSource(seed))
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() >= pDrop {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows && rng.Float64() >= pDrop {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
			if r+1 < rows && c+1 < cols && rng.Float64() < pDiag {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c+1)})
			}
		}
	}
	return graph.FromEdgeList(rows*cols, edges)
}

// EgoNet generates an ego-network-like graph (ego-Facebook): nCircles
// dense circles of circleSize vertices with intra-circle edge probability
// pIntra, plus a handful of hub vertices connected to most members. High
// mean degree and very high clustering at small vertex counts.
func EgoNet(nCircles, circleSize int, pIntra float64, seed int64) (*graph.CSR, error) {
	if nCircles <= 0 || circleSize <= 1 {
		return nil, fmt.Errorf("gen: EgoNet circles=%d size=%d invalid", nCircles, circleSize)
	}
	rng := rand.New(rand.NewSource(seed))
	nHubs := nCircles
	n := nCircles*circleSize + nHubs
	var edges []graph.Edge
	for c := 0; c < nCircles; c++ {
		base := c * circleSize
		for i := 0; i < circleSize; i++ {
			for j := i + 1; j < circleSize; j++ {
				if rng.Float64() < pIntra {
					edges = append(edges, graph.Edge{
						U: graph.VertexID(base + i), V: graph.VertexID(base + j)})
				}
			}
		}
		// The hub (the "ego") touches every member of its circle and a few
		// members of others.
		hub := graph.VertexID(nCircles*circleSize + c)
		for i := 0; i < circleSize; i++ {
			edges = append(edges, graph.Edge{U: hub, V: graph.VertexID(base + i)})
		}
		for k := 0; k < circleSize/2; k++ {
			edges = append(edges, graph.Edge{
				U: hub, V: graph.VertexID(rng.Intn(nCircles * circleSize))})
		}
	}
	return graph.FromEdgeList(n, edges)
}

// Community generates a planted-partition graph: nCommunities blocks of
// blockSize vertices, intra-block degree degIn and inter-block degree
// degOut per vertex on average. Matches product/co-purchase networks
// (com-Amazon) with modular low-skew structure.
func Community(nCommunities, blockSize, degIn, degOut int, seed int64) (*graph.CSR, error) {
	if nCommunities <= 0 || blockSize <= 1 {
		return nil, fmt.Errorf("gen: Community blocks=%d size=%d invalid", nCommunities, blockSize)
	}
	rng := rand.New(rand.NewSource(seed))
	n := nCommunities * blockSize
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		block := v / blockSize
		base := block * blockSize
		for k := 0; k < degIn; k++ {
			w := base + rng.Intn(blockSize)
			if w != v {
				edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(w)})
			}
		}
		for k := 0; k < degOut; k++ {
			w := rng.Intn(n)
			if w != v {
				edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(w)})
			}
		}
	}
	return graph.FromEdgeList(n, edges)
}

// WattsStrogatz generates a small-world graph: a ring lattice of n
// vertices each joined to its k nearest neighbors (k even), with every
// edge rewired to a uniform random endpoint with probability beta. At
// beta=0 it is a regular lattice (road-network-like index locality), at
// beta=1 nearly uniform random — the dial between the two memory-access
// regimes BitColor's MGR and HDC optimizations target.
func WattsStrogatz(n, k int, beta float64, seed int64) (*graph.CSR, error) {
	if n <= 0 || k <= 0 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("gen: WattsStrogatz n=%d k=%d invalid (k even, 0<k<n)", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: WattsStrogatz beta=%.2f out of [0,1]", beta)
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			w := (v + j) % n
			if rng.Float64() < beta {
				w = rng.Intn(n)
				if w == v {
					continue // dropped rewire; keeps expected degree close
				}
			}
			edges = append(edges, graph.Edge{U: graph.VertexID(v), V: graph.VertexID(w)})
		}
	}
	return graph.FromEdgeList(n, edges)
}

// PowerLawFixed generates a graph with an explicit power-law degree target
// via a Chung-Lu style model: vertex v gets weight (v+1)^(-alpha) and
// edges sample endpoints proportionally to weight. Used in ablations that
// need a dialable skew.
func PowerLawFixed(n int, m int, alpha float64, seed int64) (*graph.CSR, error) {
	if n <= 0 || m < 0 || alpha < 0 {
		return nil, fmt.Errorf("gen: PowerLawFixed n=%d m=%d alpha=%.2f invalid", n, m, alpha)
	}
	rng := rand.New(rand.NewSource(seed))
	// Cumulative weights for inverse-transform sampling.
	cum := make([]float64, n)
	total := 0.0
	for v := 0; v < n; v++ {
		w := 1.0
		if alpha > 0 {
			w = 1.0 / math.Pow(float64(v+1), alpha)
		}
		total += w
		cum[v] = total
	}
	sample := func() graph.VertexID {
		r := rng.Float64() * total
		i := sort.SearchFloat64s(cum, r)
		if i >= n {
			i = n - 1
		}
		return graph.VertexID(i)
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := sample(), sample()
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.FromEdgeList(n, edges)
}
