package gen

import (
	"fmt"
	"sort"

	"bitcolor/internal/graph"
)

// Dataset names follow the paper's Table 3 abbreviations. Each maps to a
// synthetic generator configuration in the same structural category,
// scaled down so the full experiment suite runs on a laptop. The paper's
// original node/edge counts are recorded for reporting.
type Dataset struct {
	// Abbrev is the paper's short name (EF, GD, ...).
	Abbrev string
	// Name is the SNAP dataset name.
	Name string
	// Category matches Table 3.
	Category string
	// PaperNodes / PaperEdges are the original sizes from Table 3.
	PaperNodes, PaperEdges int64
	// Build generates the scaled synthetic stand-in.
	Build func(seed int64) (*graph.CSR, error)
}

// scaleNote documents the scaling rule: vertex counts are reduced to keep
// the whole suite under a few seconds per experiment while preserving the
// ratio of mean degree and the category's degree shape.

// Registry returns the ten paper datasets in Table 3 order.
func Registry() []Dataset {
	return []Dataset{
		{
			Abbrev: "EF", Name: "ego-Facebook", Category: "Social network",
			PaperNodes: 4_100, PaperEdges: 88_200,
			// Small, dense, high clustering: keep near-original scale.
			Build: func(seed int64) (*graph.CSR, error) {
				return EgoNet(16, 250, 0.16, seed) // ~4K vertices, ~80K edges
			},
		},
		{
			Abbrev: "GD", Name: "gemsec-Deezer_HR", Category: "Social network",
			PaperNodes: 54_500, PaperEdges: 498_200,
			Build: func(seed int64) (*graph.CSR, error) {
				return BarabasiAlbert(24_000, 9, seed)
			},
		},
		{
			Abbrev: "CD", Name: "com-DBLP", Category: "Collaboration network",
			PaperNodes: 317_000, PaperEdges: 1_000_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return BarabasiAlbert(60_000, 3, seed)
			},
		},
		{
			Abbrev: "CA", Name: "com-Amazon", Category: "Product network",
			PaperNodes: 335_800, PaperEdges: 925_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return Community(600, 100, 2, 1, seed) // 60K vertices, modular
			},
		},
		{
			Abbrev: "CL", Name: "com-LiveJournal", Category: "Social network",
			PaperNodes: 3_900_000, PaperEdges: 34_700_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return RMAT(17, 9, 0.57, 0.19, 0.19, seed) // 131K vertices
			},
		},
		{
			Abbrev: "RC", Name: "roadNet-CA", Category: "Road network",
			PaperNodes: 1_900_000, PaperEdges: 5_500_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return RoadGrid(320, 320, 0.05, 0.08, seed) // ~102K vertices
			},
		},
		{
			Abbrev: "RP", Name: "roadNet-PA", Category: "Road network",
			PaperNodes: 1_100_000, PaperEdges: 3_100_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return RoadGrid(245, 245, 0.05, 0.08, seed) // ~60K vertices
			},
		},
		{
			Abbrev: "RT", Name: "roadNet-TX", Category: "Road network",
			PaperNodes: 1_300_000, PaperEdges: 3_800_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return RoadGrid(265, 265, 0.05, 0.08, seed) // ~70K vertices
			},
		},
		{
			Abbrev: "CO", Name: "com-Orkut", Category: "Social network",
			PaperNodes: 3_000_000, PaperEdges: 117_100_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return RMAT(16, 36, 0.57, 0.19, 0.19, seed) // dense: 65K vertices, ~2M directed edges
			},
		},
		{
			Abbrev: "CF", Name: "com-Friendster", Category: "Social network",
			PaperNodes: 65_600_000, PaperEdges: 1_806_100_000,
			Build: func(seed int64) (*graph.CSR, error) {
				return RMAT(18, 14, 0.57, 0.19, 0.19, seed) // largest stand-in: 262K vertices
			},
		},
	}
}

// ByAbbrev returns the dataset with the given Table 3 abbreviation.
func ByAbbrev(abbrev string) (Dataset, error) {
	for _, d := range Registry() {
		if d.Abbrev == abbrev {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q", abbrev)
}

// Abbrevs returns the ten abbreviations in Table 3 order.
func Abbrevs() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, d := range reg {
		out[i] = d.Abbrev
	}
	return out
}

// SmallRegistry returns a reduced-size variant of every dataset for fast
// unit tests: same generators, smaller parameters.
func SmallRegistry() []Dataset {
	small := []Dataset{
		{Abbrev: "EF", Build: func(seed int64) (*graph.CSR, error) { return EgoNet(4, 60, 0.2, seed) }},
		{Abbrev: "GD", Build: func(seed int64) (*graph.CSR, error) { return BarabasiAlbert(2000, 9, seed) }},
		{Abbrev: "CD", Build: func(seed int64) (*graph.CSR, error) { return BarabasiAlbert(3000, 3, seed) }},
		{Abbrev: "CA", Build: func(seed int64) (*graph.CSR, error) { return Community(50, 60, 2, 1, seed) }},
		{Abbrev: "CL", Build: func(seed int64) (*graph.CSR, error) { return RMAT(12, 9, 0.57, 0.19, 0.19, seed) }},
		{Abbrev: "RC", Build: func(seed int64) (*graph.CSR, error) { return RoadGrid(64, 64, 0.05, 0.08, seed) }},
		{Abbrev: "RP", Build: func(seed int64) (*graph.CSR, error) { return RoadGrid(48, 48, 0.05, 0.08, seed) }},
		{Abbrev: "RT", Build: func(seed int64) (*graph.CSR, error) { return RoadGrid(52, 52, 0.05, 0.08, seed) }},
		{Abbrev: "CO", Build: func(seed int64) (*graph.CSR, error) { return RMAT(11, 36, 0.57, 0.19, 0.19, seed) }},
		{Abbrev: "CF", Build: func(seed int64) (*graph.CSR, error) { return RMAT(13, 14, 0.57, 0.19, 0.19, seed) }},
	}
	full := Registry()
	byAbbrev := map[string]Dataset{}
	for _, d := range full {
		byAbbrev[d.Abbrev] = d
	}
	for i := range small {
		meta := byAbbrev[small[i].Abbrev]
		small[i].Name = meta.Name
		small[i].Category = meta.Category
		small[i].PaperNodes = meta.PaperNodes
		small[i].PaperEdges = meta.PaperEdges
	}
	sortDatasets(small)
	return small
}

// sortDatasets keeps Table 3 order (the Registry order) for deterministic
// reporting.
func sortDatasets(ds []Dataset) {
	order := map[string]int{}
	for i, a := range Abbrevs() {
		order[a] = i
	}
	sort.SliceStable(ds, func(i, j int) bool { return order[ds[i].Abbrev] < order[ds[j].Abbrev] })
}
