package bitcolor

import (
	"context"
	"log/slog"

	"bitcolor/internal/obs"
)

// Observer is the run-scoped observability sink: it collects spans
// (pipeline stages, engine runs, speculative rounds), counter/gauge/
// histogram families folded from the engines' per-worker shards, and
// correlates structured logs with the run ID. One Observer covers one
// logical run (a CLI invocation, a benchmark suite, a service request);
// it is safe for concurrent use by the engines' workers. All methods —
// including every Span method — are nil-receiver safe, so code paths
// instrumented with an Observer cost a single predictable branch when
// none is attached.
type Observer = obs.Observer

// Span is one timed region in an Observer's trace: a pipeline stage, an
// engine run, or one speculative round. Nil-safe like the Observer.
type Span = obs.Span

// ObserverOption configures NewObserver.
type ObserverOption = obs.Option

// NewObserver creates an Observer. Attach it to a context with
// WithObserver and pass that context to Pipeline.Run / ColorContext, or
// set ColorOptions.Observer explicitly.
func NewObserver(opts ...ObserverOption) *Observer { return obs.New(opts...) }

// WithRunID sets the run-correlation ID stamped on logs, the trace file
// and the expvar snapshot (default: a time-derived ID).
func WithRunID(id string) ObserverOption { return obs.WithRunID(id) }

// WithLogHandler routes the Observer's structured log records (with the
// run_id attribute injected) to h.
func WithLogHandler(h slog.Handler) ObserverOption { return obs.WithLogHandler(h) }

// WithObserver attaches o to ctx. Pipeline.Run, ColorContext and the
// registry's engine decorator pick it up from there, so existing call
// signatures keep working unchanged.
func WithObserver(ctx context.Context, o *Observer) context.Context {
	return obs.NewContext(ctx, o)
}

// ObserverFromContext returns the Observer attached by WithObserver
// (nil if none — and a nil Observer is valid to use).
func ObserverFromContext(ctx context.Context) *Observer {
	return obs.FromContext(ctx)
}

// ObserverServer is the observability HTTP server: Prometheus text
// exposition on /metrics, the expvar JSON snapshot on /debug/vars, and
// (when enabled) the net/http/pprof handlers under /debug/pprof/.
type ObserverServer = obs.Server

// ServeObserver starts an ObserverServer for o on addr (":0" picks a
// free port; the resolved address is available from the server). The
// server runs in a background goroutine until Close.
func ServeObserver(addr string, o *Observer, enablePprof bool) (*ObserverServer, error) {
	return obs.Serve(addr, o, enablePprof)
}
