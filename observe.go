package bitcolor

import (
	"context"
	"log/slog"

	"bitcolor/internal/obs"
)

// Observer is the run-scoped observability sink: it collects spans
// (pipeline stages, engine runs, speculative rounds), counter/gauge/
// histogram families folded from the engines' per-worker shards, and
// correlates structured logs with the run ID. One Observer covers one
// logical run (a CLI invocation, a benchmark suite, a service request);
// it is safe for concurrent use by the engines' workers. All methods —
// including every Span method — are nil-receiver safe, so code paths
// instrumented with an Observer cost a single predictable branch when
// none is attached.
type Observer = obs.Observer

// Span is one timed region in an Observer's trace: a pipeline stage, an
// engine run, or one speculative round. Nil-safe like the Observer.
type Span = obs.Span

// ObserverOption configures NewObserver.
type ObserverOption = obs.Option

// NewObserver creates an Observer. Attach it to a context with
// WithObserver and pass that context to Pipeline.Run / ColorContext, or
// set ColorOptions.Observer explicitly.
func NewObserver(opts ...ObserverOption) *Observer { return obs.New(opts...) }

// WithRunID sets the run-correlation ID stamped on logs, the trace file
// and the expvar snapshot (default: a time-derived ID).
func WithRunID(id string) ObserverOption { return obs.WithRunID(id) }

// WithLogHandler routes the Observer's structured log records (with the
// run_id attribute injected) to h.
func WithLogHandler(h slog.Handler) ObserverOption { return obs.WithLogHandler(h) }

// WithObserver attaches o to ctx. Pipeline.Run, ColorContext and the
// registry's engine decorator pick it up from there, so existing call
// signatures keep working unchanged.
func WithObserver(ctx context.Context, o *Observer) context.Context {
	return obs.NewContext(ctx, o)
}

// ObserverFromContext returns the Observer attached by WithObserver
// (nil if none — and a nil Observer is valid to use).
func ObserverFromContext(ctx context.Context) *Observer {
	return obs.FromContext(ctx)
}

// ObserverServer is the observability HTTP server: Prometheus text
// exposition on /metrics (run-scoped families plus the process-wide
// bitcolor_pool_* / bitcolor_runs_* / bitcolor_build_info plane), the
// expvar JSON snapshot on /debug/vars, the live run registry on
// /debug/runs (JSON, or a minimal HTML table for browsers) with
// per-run Chrome traces on /debug/runs/<id>/trace, and (when enabled)
// the net/http/pprof handlers under /debug/pprof/.
type ObserverServer = obs.Server

// ServeObserver starts an ObserverServer for o on addr (":0" picks a
// free port; the resolved address is available from the server). The
// server runs in a background goroutine until Close.
func ServeObserver(addr string, o *Observer, enablePprof bool) (*ObserverServer, error) {
	return obs.Serve(addr, o, enablePprof)
}

// LiveRun is one in-flight run's introspection view: identity (engine,
// graph size, registry-unique ID), pool negotiation (demand, grant,
// queue wait) and a live Progress snapshot — the element type of the
// /debug/runs "live" array and of LiveRuns.
type LiveRun = obs.LiveRun

// RunProgress is a point-in-time snapshot of one run's advancement —
// vertices colored, blocks claimed, current round, conflicts, and
// per-worker lane activity — read race-free from the engines' atomic
// live-mirror counters mid-run. Every field is cumulative, so
// consecutive snapshots of one run are monotonically non-decreasing.
type RunProgress = obs.Progress

// RunSummary is one completed run in the flight recorder: final
// status (ok | cancelled | error), duration, colors, rounds,
// conflicts, and the pool negotiation it ran under.
type RunSummary = obs.RunSummary

// RunPoolStatus is a pool's instantaneous state (capacity, slots in
// use, admission queue depth), as returned by Pool.Stats and embedded
// in /debug/runs.
type RunPoolStatus = obs.PoolStatus

// RunWatchdogConfig tunes StartRunWatchdog: scan interval, the
// deadline-budget fraction past which a run is reported slow, and the
// progress-stall duration past which it is reported stalled.
type RunWatchdogConfig = obs.WatchdogConfig

// LiveRuns snapshots every in-flight run registered with an Observer —
// the programmatic equivalent of scraping /debug/runs.
func LiveRuns() []LiveRun { return obs.Runs().LiveRuns() }

// RecentRuns returns the flight recorder — the last completed runs,
// most recent first, bounded to the last 64.
func RecentRuns() []RunSummary { return obs.Runs().Recent() }

// RunProgressByID returns a live run's progress snapshot by its
// registry ID (false when the run is no longer in flight).
func RunProgressByID(id string) (RunProgress, bool) { return obs.Runs().ProgressOf(id) }

// StartRunWatchdog starts the slow-run watchdog over the live run
// registry: every Interval it scans the in-flight runs and logs a
// run_id-stamped warning through each slow run's own observer logger
// when the run has consumed more than DeadlineFraction of its context
// deadline budget or its vertex progress has stalled for longer than
// Stall. Returns a stop function (idempotent).
func StartRunWatchdog(cfg RunWatchdogConfig) (stop func()) {
	return obs.Runs().StartWatchdog(cfg)
}

// BuildInfo returns the binary's build identity (go_version, revision,
// module_version) — the same values exported as bitcolor_build_info,
// stamped into /debug/runs, and (as the revision) into benchsuite
// BenchFile envelopes.
func BuildInfo() map[string]string { return obs.BuildInfo() }
