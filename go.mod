module bitcolor

go 1.22
