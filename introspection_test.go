package bitcolor

// Root-level introspection-plane tests: the acceptance path for the
// multi-run observability plane. One bounded pool, several concurrent
// observed runs, and the /debug/runs + /metrics + /debug/vars surfaces
// scraped WHILE the runs execute — under the race detector this is the
// proof that mid-run progress reads never touch engine hot-path state
// unsafely, that per-run progress is monotonically non-decreasing, and
// that a run's lanes never show another run's counters.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"context"
)

// waitFor spins (bounded) until cond holds. Callers only wait on
// absorbing states — conditions that, once true, stay true until the
// test itself acts — so the deadline is a loud failure mode for a
// broken invariant, never a timing race.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
	}
}

// scrapeRuns fetches and decodes /debug/runs.
func scrapeRuns(t *testing.T, base string) (struct {
	Build  map[string]string `json:"build"`
	Pools  []RunPoolStatus   `json:"pools"`
	Live   []LiveRun         `json:"live"`
	Recent []RunSummary      `json:"recent"`
}, error) {
	t.Helper()
	var payload struct {
		Build  map[string]string `json:"build"`
		Pools  []RunPoolStatus   `json:"pools"`
		Live   []LiveRun         `json:"live"`
		Recent []RunSummary      `json:"recent"`
	}
	resp, err := http.Get(base + "/debug/runs")
	if err != nil {
		return payload, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return payload, err
	}
	if resp.StatusCode != http.StatusOK {
		return payload, fmt.Errorf("status %d", resp.StatusCode)
	}
	return payload, json.Unmarshal(body, &payload)
}

// TestIntrospectionLiveRunWithQueuedRun is the acceptance scenario:
// while run A executes with every pool slot it could get, run B waits
// for admission — and /debug/runs must show A in flight with live,
// increasing progress, B in state "queued", and the pool's nonzero
// queue depth, all observed by a real HTTP scraper mid-run.
func TestIntrospectionLiveRunWithQueuedRun(t *testing.T) {
	// On a single-P box the scraper's HTTP hops each wait out the busy
	// engine workers' preemption quantum and the run can end before two
	// scrapes land; a few extra Ps let the scraper run alongside them.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	g, err := Generate("CF", 1) // the largest stand-in: a long engine run
	if err != nil {
		t.Fatal(err)
	}
	g, err = Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}

	oA := NewObserver()
	srv, err := ServeObserver("127.0.0.1:0", oA, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	// The test starts by holding EVERY slot, so both runs park in the
	// admission queue — an absorbing state: nothing can admit them until
	// the test releases. Releasing 2 slots then admits exactly run A
	// (FIFO head, want 2) and leaves run B queued with zero slots free,
	// so the live-A + queued-B window is A's entire runtime, entered
	// deterministically rather than raced against the engine.
	pool := NewPool(3)
	held, err := pool.Acquire(context.Background(), 3)
	if err != nil || held != 3 {
		t.Fatalf("hold all slots: granted %d, err %v", held, err)
	}
	released := 0
	defer func() { pool.Release(held - released) }()

	runEngine := func(o *Observer, errc chan<- error) {
		_, _, err := ColorContext(context.Background(), g, ColorOptions{
			Engine: EngineParallelBitwise, Workers: 2, Pool: pool, Observer: o,
		})
		errc <- err
	}

	oB := NewObserver()
	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go runEngine(oA, errA)
	waitFor(t, "run A queued", func() bool { return pool.Waiting() == 1 })
	go runEngine(oB, errB)
	waitFor(t, "run B queued behind A", func() bool { return pool.Waiting() == 2 })
	pool.Release(2) // admits A; B stays queued until A finishes
	released = 2

	// Scrape until A's live progress has visibly advanced at least twice
	// while B is queued. A holds the pool the whole time, so every
	// sample until A finishes must show B queued and queue depth 1.
	type sample struct{ vertices, queueDepth int64 }
	var (
		samples     []sample
		sawQueuedB  bool
		tracePulled bool
	)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		p, err := scrapeRuns(t, base)
		if err != nil {
			t.Fatal(err)
		}
		var a, b *LiveRun
		for i := range p.Live {
			switch p.Live[i].RunID {
			case oA.RunID():
				a = &p.Live[i]
			case oB.RunID():
				b = &p.Live[i]
			}
		}
		if a == nil {
			break // A finished; judge what we collected
		}
		if a.Progress.State == "queued" {
			continue // grant committed but not yet observed by A's goroutine
		}
		if a.Progress.State != "running" || a.Granted != 2 {
			t.Fatalf("run A mid-run view = %+v", a)
		}
		if b != nil {
			if b.Progress.State != "queued" {
				t.Fatalf("run B state = %q, want queued", b.Progress.State)
			}
			sawQueuedB = true
		}
		var depth int64
		for _, ps := range p.Pools {
			if ps.Name == pool.Name() {
				depth = int64(ps.QueueDepth)
			}
		}
		samples = append(samples, sample{a.Progress.Vertices, depth})

		// On-demand trace of the IN-FLIGHT run must serve immediately.
		if !tracePulled && a.Progress.Vertices > 0 {
			resp, err := http.Get(base + "/debug/runs/" + a.ID + "/trace")
			if err != nil {
				t.Fatal(err)
			}
			var tf struct {
				OtherData map[string]any `json:"otherData"`
			}
			err = json.NewDecoder(resp.Body).Decode(&tf)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("live trace: status %d, err %v", resp.StatusCode, err)
			}
			if tf.OtherData["run_id"] != oA.RunID() {
				t.Fatalf("live trace run_id = %v", tf.OtherData["run_id"])
			}
			tracePulled = true
		}
	}
	if err := <-errA; err != nil {
		t.Fatal(err)
	}
	if err := <-errB; err != nil {
		t.Fatal(err)
	}

	// Judge the collected mid-run evidence.
	if !sawQueuedB {
		t.Error("never observed run B in state queued")
	}
	if !tracePulled {
		t.Error("never pulled the in-flight run's trace")
	}
	var increases int
	var sawDepth bool
	for i := 1; i < len(samples); i++ {
		if samples[i].vertices < samples[i-1].vertices {
			t.Fatalf("live progress went backwards: %d then %d (sample %d)",
				samples[i-1].vertices, samples[i].vertices, i)
		}
		if samples[i].vertices > samples[i-1].vertices {
			increases++
		}
	}
	for _, s := range samples {
		if s.queueDepth >= 1 {
			sawDepth = true
		}
	}
	if increases < 2 {
		t.Errorf("live progress advanced %d times across %d scrapes, want >= 2", increases, len(samples))
	}
	if !sawDepth {
		t.Error("never observed nonzero pool queue depth while B waited")
	}

	// Both runs land in the flight recorder with the pool negotiation.
	p, err := scrapeRuns(t, base)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, s := range p.Recent {
		if s.RunID == oA.RunID() || s.RunID == oB.RunID() {
			found++
			if s.Status != "ok" || s.Colors == 0 || s.Granted != 2 {
				t.Errorf("flight-recorder summary = %+v", s)
			}
		}
	}
	if found != 2 {
		t.Errorf("flight recorder holds %d of the 2 runs", found)
	}
	if p.Build["revision"] == "" {
		t.Error("/debug/runs missing build revision")
	}
}

// TestIntrospectionConcurrentScrapes hammers /metrics, /debug/vars and
// /debug/runs from parallel scraper goroutines while four clients run
// engines through one shared pool — the concurrent-scrape-safety
// contract, meaningful chiefly under -race. Each /debug/runs scraper
// additionally checks per-run monotonicity and lane isolation.
func TestIntrospectionConcurrentScrapes(t *testing.T) {
	abbrevs := []string{"RC", "GD", "CA", "CL"}
	graphs := make([]*Graph, len(abbrevs))
	for i, a := range abbrevs {
		g, err := Generate(a, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if graphs[i], err = Preprocess(g); err != nil {
			t.Fatal(err)
		}
	}

	o := NewObserver()
	srv, err := ServeObserver("127.0.0.1:0", o, false)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	pool := NewPool(2) // below aggregate demand: admissions genuinely queue
	const reps = 3
	done := make(chan struct{})
	var wg sync.WaitGroup

	observers := make([]*Observer, len(graphs))
	for i := range graphs {
		observers[i] = NewObserver()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				_, _, err := ColorContext(context.Background(), graphs[i], ColorOptions{
					Engine: EngineParallelBitwise, Workers: 2,
					Pool: pool, Observer: observers[i],
				})
				if err != nil {
					t.Errorf("client %d rep %d: %v", i, r, err)
					return
				}
			}
		}(i)
	}

	// Plain-text scrapers: liveness of /metrics and /debug/vars under
	// concurrent runs.
	var scrapeWG sync.WaitGroup
	for _, path := range []string{"/metrics", "/debug/vars"} {
		scrapeWG.Add(1)
		go func(path string) {
			defer scrapeWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	// Structured /debug/runs scrapers with per-run invariants. Each
	// scraper's observations are sequential, so its own per-ID history
	// must be monotonically non-decreasing.
	runIDs := map[string]int{}
	for i, obsv := range observers {
		runIDs[obsv.RunID()] = i
	}
	for s := 0; s < 2; s++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			last := map[string]int64{} // registry run ID -> last vertices
			for {
				select {
				case <-done:
					return
				default:
				}
				p, err := scrapeRuns(t, base)
				if err != nil {
					t.Error(err)
					return
				}
				for _, lr := range p.Live {
					if prev, ok := last[lr.ID]; ok && lr.Progress.Vertices < prev {
						t.Errorf("run %s progress went backwards: %d -> %d",
							lr.ID, prev, lr.Progress.Vertices)
						return
					}
					last[lr.ID] = lr.Progress.Vertices
					// Lane isolation: a run's lanes are its own 2 workers;
					// a recycled or foreign ShardSet would show up as extra
					// lanes or over-range worker indices.
					if len(lr.Progress.Lanes) > 2 {
						t.Errorf("run %s shows %d lanes for 2 workers", lr.ID, len(lr.Progress.Lanes))
						return
					}
					for _, lane := range lr.Progress.Lanes {
						if lane.Worker < 0 || lane.Worker >= 2 {
							t.Errorf("run %s lane worker index %d", lr.ID, lane.Worker)
							return
						}
					}
					if _, ours := runIDs[lr.RunID]; !ours && lr.RunID != o.RunID() {
						continue // other tests' runs in the shared registry
					}
					if lr.Engine != "parallelbitwise" {
						t.Errorf("run %s engine %q crossed into our lane", lr.ID, lr.Engine)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(done)
	scrapeWG.Wait()

	// Every client's runs reached the flight recorder with its own run
	// ID — completion bookkeeping survived the concurrency.
	counts := map[string]int{}
	p, err := scrapeRuns(t, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Recent {
		if _, ours := runIDs[s.RunID]; ours {
			counts[s.RunID]++
			if s.Status != "ok" {
				t.Errorf("run %s status %q", s.ID, s.Status)
			}
		}
	}
	for id, i := range runIDs {
		if counts[id] != reps {
			t.Errorf("client %d: %d runs in flight recorder, want %d", i, counts[id], reps)
		}
	}
	if pool.InUse() != 0 || pool.Waiting() != 0 {
		t.Errorf("pool not idle: in use %d, waiting %d", pool.InUse(), pool.Waiting())
	}
}
