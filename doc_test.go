package bitcolor

import (
	"os"
	"strings"
	"testing"
)

// TestRegistryReadmeTable keeps the README engine table in lock-step
// with the engine registry: one row per registered engine, in
// registration order, with the registry's name, description, Parallel
// flag and Stats string.
func TestRegistryReadmeTable(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	var rows [][]string
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "| `Engine") {
			continue
		}
		cells := strings.Split(line, "|")
		// Leading/trailing pipes give empty first/last cells.
		if len(cells) != 7 {
			t.Fatalf("engine row has %d cells: %q", len(cells)-2, line)
		}
		row := make([]string, 0, 5)
		for _, c := range cells[1:6] {
			row = append(row, strings.Trim(strings.TrimSpace(c), "`"))
		}
		rows = append(rows, row)
	}
	engines := Engines()
	if len(rows) != len(engines) {
		t.Fatalf("README lists %d engines, registry has %d", len(rows), len(engines))
	}
	for i, e := range engines {
		info, ok := e.Info()
		if !ok {
			t.Fatalf("%v: no registry entry", e)
		}
		row := rows[i]
		if row[1] != info.Name {
			t.Errorf("row %d: README name %q, registry %q", i, row[1], info.Name)
		}
		if row[2] != info.Description {
			t.Errorf("%s: README algorithm %q, registry description %q", info.Name, row[2], info.Description)
		}
		wantPar := "no"
		if info.Parallel {
			wantPar = "yes"
		}
		if row[3] != wantPar {
			t.Errorf("%s: README parallel %q, registry %q", info.Name, row[3], wantPar)
		}
		if row[4] != info.Stats {
			t.Errorf("%s: README stats %q, registry %q", info.Name, row[4], info.Stats)
		}
	}
}
