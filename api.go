package bitcolor

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"bitcolor/internal/coloring"
	"bitcolor/internal/exec"
	"bitcolor/internal/gen"
	"bitcolor/internal/graph"
	"bitcolor/internal/metrics"
	"bitcolor/internal/obs"
	"bitcolor/internal/partition"
	"bitcolor/internal/reorder"
	"bitcolor/internal/resources"
	"bitcolor/internal/sim"
)

// Graph is a compressed-sparse-row graph (paper §2.1).
type Graph = graph.CSR

// Edge is one undirected edge.
type Edge = graph.Edge

// VertexID is a dense vertex index.
type VertexID = graph.VertexID

// Result is a coloring outcome.
type Result = coloring.Result

// SimConfig parameterizes the accelerator simulator.
type SimConfig = sim.Config

// SimResult is a simulated accelerator run.
type SimResult = sim.Result

// ResourceUsage is one point of the FPGA resource model.
type ResourceUsage = resources.Usage

// MaxColorsDefault is the paper's palette size (1024).
const MaxColorsDefault = coloring.MaxColorsDefault

// ForwardRingCap is EngineDCT's per-worker forwarding-ring bound: how
// many vertices a worker may park (the scan window it may run ahead of
// its slowest dependency) before it falls back to an inline wait.
// RunStats.ForwardRingPeak reports against this bound.
const ForwardRingCap = coloring.ForwardRingCap

// NewGraph builds an undirected simple graph over n vertices; self loops
// and duplicate edges are dropped, adjacency lists come out sorted.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdgeList(n, edges)
}

// NewGraphParallel is NewGraph built by `workers` goroutines (<=0:
// GOMAXPROCS) — per-worker degree counting, prefix sum, scatter fill and
// parallel per-vertex sorting. The result is identical to NewGraph's.
func NewGraphParallel(n int, edges []Edge, workers int) (*Graph, error) {
	return graph.FromEdgeListParallel(n, edges, workers)
}

// On-disk graph format names, as sniffed by OpenGraphFile and used as
// the "format" label on the bitcolor_graph_load_* metric families.
const (
	// FormatEdgeList is a SNAP-style whitespace edge list.
	FormatEdgeList = graph.FormatEdgeList
	// FormatBCSR1 is the copying binary CSR format (SaveGraph's output).
	FormatBCSR1 = graph.FormatBCSR1
	// FormatBCSR2 is the mmap-ready binary CSR v2 format: 64-byte-aligned
	// little-endian sections behind a checksummed header, readable in
	// place without parsing.
	FormatBCSR2 = graph.FormatBCSR2
	// FormatBCSR3 is the shard-major binary CSR v3 format (SaveGraphV3's
	// output): per-shard sections behind a persisted partition assignment,
	// openable for bounded-residency out-of-core coloring.
	FormatBCSR3 = graph.FormatBCSR3
	// FormatDIMACS is a DIMACS coloring instance (".col"), recognized by
	// extension rather than content.
	FormatDIMACS = "dimacs"
)

// LoadGraph reads a graph from disk: SNAP-style edge lists (any text
// extension), DIMACS coloring instances (".col") or the binary CSR
// formats produced by SaveGraph and SaveGraphV2 (".bcsr", v1 or v2 —
// the version is sniffed from the header). LoadGraph always copies into
// private memory; use OpenGraphFile to map a v2 file zero-copy.
func LoadGraph(path string) (*Graph, error) {
	switch {
	case strings.HasSuffix(path, ".bcsr"):
		format, err := graph.SniffFormat(path)
		if err != nil {
			return nil, err
		}
		switch format {
		case FormatBCSR2:
			return graph.LoadBinaryV2File(path)
		case FormatBCSR3:
			g, _, err := graph.LoadBinaryV3File(path)
			return g, err
		}
		return graph.LoadBinaryFile(path)
	case strings.HasSuffix(path, ".col"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadDIMACS(f)
	default:
		return graph.LoadEdgeListFile(path)
	}
}

// SaveGraph writes the graph in binary CSR format (v1).
func SaveGraph(path string, g *Graph) error {
	return graph.SaveBinaryFile(path, g)
}

// SaveGraphV2 writes the graph in the mmap-ready binary CSR v2 format.
// Both writers are atomic: the file appears complete or not at all.
func SaveGraphV2(path string, g *Graph) error {
	return graph.SaveBinaryV2File(path, g)
}

// SaveGraphV3 writes the graph in the shard-major binary CSR v3 format:
// it partitions g into `shards` parts with the given EngineSharded
// strategy (PartitionRanges or PartitionLabelProp; "" defaults to
// ranges), and persists the assignment alongside per-shard sections so
// a later open — in core or out of core — skips partitioning entirely
// (the content-hash partition cache). Atomic like the other writers.
func SaveGraphV3(path string, g *Graph, shards int, strategy string) error {
	a, err := coloring.BuildPartition(g, shards, strategy)
	if err != nil {
		return err
	}
	code, err := partition.StrategyCode(strategy)
	if err != nil {
		return err
	}
	return graph.SaveBinaryV3File(path, g, a.Parts, a.K, code)
}

// GraphHandle is an opened on-disk graph together with whatever backs
// it. For a mapped BCSR v2 file the CSR sections alias the page cache
// and Close unmaps them — the Graph must not be used after Close (the
// handle panics on Graph() to make that bug loud). For every other
// format Close is a no-op and the Graph is ordinary heap memory.
type GraphHandle struct {
	g      *Graph
	m      *graph.MappedCSR
	sf     *graph.ShardedFile
	format string
}

// Graph returns the loaded graph. It panics if the handle was mapped
// and has been closed, or if the handle was opened out of core (no
// materialized CSR exists — color through ColorHandle instead).
func (h *GraphHandle) Graph() *Graph {
	if h.m != nil {
		return h.m.Graph()
	}
	if h.g == nil && h.sf != nil {
		panic("bitcolor: out-of-core handle has no materialized graph; color it with ColorHandle or open it with OpenGraphFile")
	}
	return h.g
}

// Format reports the sniffed on-disk format (FormatEdgeList,
// FormatBCSR1, FormatBCSR2 or FormatDIMACS).
func (h *GraphHandle) Format() string { return h.format }

// Mapped reports whether the graph's payload aliases an mmap'd region
// (true only for BCSR v2 files on platforms where mapping succeeded).
func (h *GraphHandle) Mapped() bool { return h.m != nil && h.m.Mapped() }

// OutOfCore reports whether the handle streams from a BCSR v3 file
// without a materialized CSR (opened via OpenGraphFileOutOfCore).
func (h *GraphHandle) OutOfCore() bool { return h.sf != nil && h.g == nil && h.m == nil }

// NumShards returns the partition count persisted in the handle's BCSR
// v3 file (0 for every other format).
func (h *GraphHandle) NumShards() int {
	if h.sf == nil {
		return 0
	}
	return h.sf.Shards()
}

// PartitionStrategy returns the partition strategy persisted in the
// handle's BCSR v3 file (PartitionRanges or PartitionLabelProp; "" for
// every other format).
func (h *GraphHandle) PartitionStrategy() string {
	if h.sf == nil {
		return ""
	}
	name, err := partition.StrategyName(h.sf.Strategy())
	if err != nil {
		return ""
	}
	return name
}

// ShardMapStats snapshots a BCSR v3 handle's shard-mapping activity:
// sections mapped and retired, current and peak resident payload bytes.
type ShardMapStats = graph.ShardMapStats

// ShardStats snapshots the handle's shard-mapping counters (zero for
// non-v3 formats) — the residency telemetry behind the out-of-core
// invariant.
func (h *GraphHandle) ShardStats() ShardMapStats {
	if h.sf == nil {
		return ShardMapStats{}
	}
	return h.sf.Stats()
}

// Close releases the handle's resources (unmapping the file when
// mapped, closing the shard file when one backs the handle).
// Idempotent; safe on handles for unmapped formats.
func (h *GraphHandle) Close() error {
	if h == nil {
		return nil
	}
	var err error
	if h.m != nil {
		err = h.m.Close()
	}
	if h.sf != nil {
		if cerr := h.sf.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// OpenGraphFile opens a graph for reading, sniffing the on-disk format
// from content: BCSR v2 files are mmap'd and used zero-copy (falling
// back to a private copy on foreign byte order, misalignment or
// platforms without mmap), BCSR v1 and edge lists go through the
// copying readers, and ".col" files parse as DIMACS. Close the handle
// when done with the graph.
func OpenGraphFile(path string) (*GraphHandle, error) {
	return OpenGraphFileContext(context.Background(), path)
}

// OpenGraphFileContext is OpenGraphFile under a context: an Observer
// attached via WithObserver records a "graph/load" span and the
// bitcolor_graph_load_* metric families (mapped v2 loads are labeled
// "bcsr-v2-mapped" to separate them from copied ones).
func OpenGraphFileContext(ctx context.Context, path string) (*GraphHandle, error) {
	o := obs.FromContext(ctx)
	sp := o.StartSpan("graph/load").Attr("path", path)
	var bytes int64
	if st, err := os.Stat(path); err == nil {
		bytes = st.Size()
	}
	start := time.Now()
	h, label, err := openGraphFile(path)
	d := time.Since(start)
	if h != nil && h.Mapped() {
		label += "-mapped"
	}
	sp.Attr("format", label).Attr("bytes", bytes)
	if err != nil {
		sp.Attr("error", err.Error())
	} else {
		g := h.Graph()
		sp.Attr("vertices", int64(g.NumVertices())).Attr("edges", g.NumEdges())
	}
	sp.End()
	o.RecordGraphLoad(label, bytes, d, err)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// openGraphFile is the format dispatch behind OpenGraphFile. The
// returned format names what the path sniffed as, for metric labeling —
// it is meaningful even when the load itself failed ("unknown" only
// when the sniff could not run at all).
func openGraphFile(path string) (*GraphHandle, string, error) {
	if strings.HasSuffix(path, ".col") {
		f, err := os.Open(path)
		if err != nil {
			return nil, FormatDIMACS, err
		}
		defer f.Close()
		g, err := graph.ReadDIMACS(f)
		if err != nil {
			return nil, FormatDIMACS, err
		}
		return &GraphHandle{g: g, format: FormatDIMACS}, FormatDIMACS, nil
	}
	format, err := graph.SniffFormat(path)
	if err != nil {
		return nil, "unknown", err
	}
	switch format {
	case FormatBCSR2:
		m, err := graph.MapBinaryFile(path)
		if err != nil {
			return nil, format, err
		}
		return &GraphHandle{m: m, format: format}, format, nil
	case FormatBCSR3:
		// Eager path: materialize the CSR (full re-verification through
		// the copying reader) and keep the shard handle alongside it, so
		// EngineSharded runs reuse the persisted partition.
		sf, err := graph.OpenShardedFile(path)
		if err != nil {
			return nil, format, err
		}
		g, err := sf.Materialize()
		if err != nil {
			sf.Close()
			return nil, format, err
		}
		return &GraphHandle{g: g, sf: sf, format: format}, format, nil
	case FormatBCSR1:
		g, err := graph.LoadBinaryFile(path)
		if err != nil {
			return nil, format, err
		}
		return &GraphHandle{g: g, format: format}, format, nil
	default:
		g, err := graph.LoadEdgeListFile(path)
		if err != nil {
			return nil, format, err
		}
		return &GraphHandle{g: g, format: format}, format, nil
	}
}

// OpenGraphFileOutOfCore opens a BCSR v3 shard-major file for
// bounded-residency streaming: only the header, partition assignment
// and shard directory become resident — the O(E) adjacency stays on
// disk until an out-of-core EngineSharded run maps it shard by shard.
// The handle has no materialized graph (Graph() panics); color it with
// ColorHandle, and Close it when done.
func OpenGraphFileOutOfCore(path string) (*GraphHandle, error) {
	return OpenGraphFileOutOfCoreContext(context.Background(), path)
}

// OpenGraphFileOutOfCoreContext is OpenGraphFileOutOfCore under a
// context: an Observer attached via WithObserver records the load span
// and the bitcolor_graph_load_* families, exactly like the eager open.
func OpenGraphFileOutOfCoreContext(ctx context.Context, path string) (*GraphHandle, error) {
	o := obs.FromContext(ctx)
	sp := o.StartSpan("graph/load").Attr("path", path).Attr("mode", "outofcore")
	var bytes int64
	if st, err := os.Stat(path); err == nil {
		bytes = st.Size()
	}
	start := time.Now()
	h, label, err := openGraphFileOutOfCore(path)
	d := time.Since(start)
	sp.Attr("format", label).Attr("bytes", bytes)
	if err != nil {
		sp.Attr("error", err.Error())
	} else {
		sp.Attr("vertices", int64(h.sf.NumVertices())).Attr("edges", h.sf.NumEdges()).
			Attr("shards", int64(h.sf.Shards()))
	}
	sp.End()
	o.RecordGraphLoad(label, bytes, d, err)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func openGraphFileOutOfCore(path string) (*GraphHandle, string, error) {
	format, err := graph.SniffFormat(path)
	if err != nil {
		return nil, "unknown", err
	}
	if format != FormatBCSR3 {
		return nil, format, fmt.Errorf("bitcolor: out-of-core open needs a BCSR v3 shard-major file (write one with SaveGraphV3 or `preprocess -obin-v3`); %s sniffed as %s", path, format)
	}
	sf, err := graph.OpenShardedFile(path)
	if err != nil {
		return nil, format, err
	}
	return &GraphHandle{sf: sf, format: format}, format, nil
}

// Generate builds one of the paper's datasets (Table 3 abbreviation:
// EF, GD, CD, CA, CL, RC, RP, RT, CO, CF) as a scaled synthetic stand-in.
func Generate(abbrev string, seed int64) (*Graph, error) {
	d, err := gen.ByAbbrev(abbrev)
	if err != nil {
		return nil, err
	}
	return d.Build(seed)
}

// Datasets lists the Table 3 abbreviations.
func Datasets() []string { return gen.Abbrevs() }

// PreprocessOption configures Preprocess and PreprocessWithPermutation.
type PreprocessOption func(*preprocessConfig)

type preprocessConfig struct {
	workers int
}

// WithPreprocessParallelism sets the number of goroutines the
// preprocessing pipeline (degree scatter, relabel, per-vertex edge
// sorting) may use; n <= 0 means GOMAXPROCS. The output is identical to
// the sequential pipeline at any parallelism.
func WithPreprocessParallelism(n int) PreprocessOption {
	return func(c *preprocessConfig) { c.workers = n }
}

// Preprocess applies the paper's preprocessing: degree-based-grouping
// reordering (descending degree) and ascending edge sorting. The
// returned graph is what the accelerator expects; colors assigned to it
// map back to the original IDs through the permutation available from
// PreprocessWithPermutation.
func Preprocess(g *Graph, opts ...PreprocessOption) (*Graph, error) {
	out, _, err := PreprocessWithPermutation(g, opts...)
	return out, err
}

// PreprocessWithPermutation is Preprocess returning the vertex renaming:
// NewID[old] gives the reordered index of an original vertex.
func PreprocessWithPermutation(g *Graph, opts ...PreprocessOption) (*Graph, []VertexID, error) {
	var cfg preprocessConfig
	for _, o := range opts {
		o(&cfg)
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	out, p := reorder.DBGParallel(g, cfg.workers)
	return out, p.NewID, nil
}

// Engine selects a software coloring algorithm.
type Engine int

// The implemented software engines.
const (
	// EngineGreedy is the paper's Algorithm 1 (flag-array color scan).
	EngineGreedy Engine = iota
	// EngineBitwise is the paper's Algorithm 2 with uncolored-vertex
	// pruning: identical colors to EngineGreedy, O(1) Stage 1.
	EngineBitwise
	// EngineDSATUR is Brélaz's saturation heuristic.
	EngineDSATUR
	// EngineWelshPowell colors in descending-degree order.
	EngineWelshPowell
	// EngineSmallestLast colors in degeneracy order.
	EngineSmallestLast
	// EngineJonesPlassmann is parallel independent-set coloring (the
	// GPU baseline's algorithm).
	EngineJonesPlassmann
	// EngineLubyMIS extracts one maximal independent set per color.
	EngineLubyMIS
	// EngineRLF is Leighton's Recursive Largest First: best quality of
	// the implemented heuristics, highest cost.
	EngineRLF
	// EngineSpeculative is Gebremedhin–Manne shared-memory parallel
	// coloring: speculate, detect conflicts, retry — the multicore host
	// baseline.
	EngineSpeculative
	// EngineParallelBitwise fuses the bit-wise color state of Algorithm 2
	// into the speculative parallel framework, with degree-aware dynamic
	// dispatch and in-place conflict repair — the fastest host engine and
	// the multicore reference for accelerator speedup claims.
	EngineParallelBitwise
	// EngineDCT is the host port of the accelerator's conflict-avoidance
	// scheme (contributions 5–7): owner-computes pattern-p dispatch
	// (worker i colors vertices i, i+P, …, in index order) with
	// cross-worker color forwarding through bounded per-worker rings —
	// the Data Conflict Table in software. It completes in exactly one
	// pass with zero repairs and produces a coloring byte-identical to
	// EngineGreedy at every worker count.
	EngineDCT
	// EngineSharded is the host rendering of the paper's multi-card
	// scale-out: the graph is partitioned into ShardCount parts (contiguous
	// ranges by default, label propagation via PartitionStrategy), every
	// shard colors its interior concurrently with the DCT owner-computes
	// loop, and the boundary frontier — vertices whose coloring depends on
	// another shard — is resolved in one bounded second phase under the
	// same lower-index-wins rule. Byte-identical to EngineGreedy at every
	// (shards × workers) combination; one shard degenerates to EngineDCT.
	EngineSharded
)

// Engines returns every implemented software engine, in registry
// (= declaration) order. The list is derived from the internal/coloring
// engine registry, so a newly registered engine appears here, in
// ParseEngine and in every CLI automatically.
func Engines() []Engine {
	infos := coloring.Engines()
	out := make([]Engine, len(infos))
	for i := range infos {
		out[i] = Engine(i)
	}
	return out
}

// String names the engine (the registry name used by the CLIs).
func (e Engine) String() string {
	if info, ok := coloring.LookupIndex(int(e)); ok {
		return info.Name
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Info returns the registry metadata for the engine: name, whether it is
// parallel and/or seeded, which run statistics it emits, and a one-line
// description.
func (e Engine) Info() (EngineInfo, bool) {
	return coloring.LookupIndex(int(e))
}

// EngineInfo is the registry's description of one engine.
type EngineInfo = coloring.EngineInfo

// EngineNames returns the registered engine names in registry order —
// what ParseEngine accepts and the CLIs advertise.
func EngineNames() []string { return coloring.EngineNames() }

// ParseEngine resolves an engine name as used by the CLIs.
func ParseEngine(name string) (Engine, error) {
	if i := coloring.Index(name); i >= 0 {
		return Engine(i), nil
	}
	return 0, fmt.Errorf("bitcolor: unknown engine %q (have %s)",
		name, strings.Join(coloring.EngineNames(), ", "))
}

// ColorOptions configure Color.
type ColorOptions struct {
	// Engine selects the algorithm (default EngineBitwise).
	Engine Engine
	// MaxColors bounds the palette (default MaxColorsDefault).
	MaxColors int
	// Seed feeds the randomized engines (JP, Luby).
	Seed int64
	// Workers bounds the parallel engines' goroutine count (JP,
	// Speculative, ParallelBitwise; <=0: GOMAXPROCS).
	Workers int
	// DisableGather switches the host-parallel engines (Speculative,
	// ParallelBitwise, DCT) off the blocked color-gather and PUV tail
	// pruning back onto the naive random-access memory path — the
	// baseline arm of the locality ablation. When neither DisableGather
	// nor ForceGather is set, the engines decide adaptively: graphs with
	// average degree below 8 (the road-network regime, where per-read
	// classification overhead beats the locality win) run with the gather
	// off, and RunStats.Gather.AutoDisabled records the decision.
	DisableGather bool
	// ForceGather keeps the blocked color-gather on even when the
	// adaptive average-degree heuristic would switch it off. Ignored when
	// DisableGather is set.
	ForceGather bool
	// HotVertices overrides the gather's hot-tier threshold v_t (0:
	// automatic sizing from the HVC capacity model).
	HotVertices int
	// ShardCount is EngineSharded's partition count (<=1: a single shard,
	// which runs the plain DCT path). Other engines ignore it.
	ShardCount int
	// PartitionStrategy selects how EngineSharded partitions the graph:
	// PartitionRanges ("" or "ranges", the zero-cost contiguous default)
	// or PartitionLabelProp ("labelprop", balanced label propagation for
	// a smaller edge cut at a preprocessing cost).
	PartitionStrategy string
	// OutOfCore streams an EngineSharded run from the handle's BCSR v3
	// file instead of a materialized CSR — only ColorHandle honors it,
	// and only on a v3-backed handle. Implied by an
	// OpenGraphFileOutOfCore handle.
	OutOfCore bool
	// MaxResidentShards bounds how many shard payloads an out-of-core
	// run keeps mapped at once (<=0: one — strictest residency; clamped
	// to the file's shard count).
	MaxResidentShards int
	// Observer is an explicit run-scoped observability sink. It takes
	// precedence over an Observer attached to the context via
	// WithObserver; nil falls back to the context (and then to no
	// observation at all, at the cost of one branch per run).
	Observer *Observer
	// Scratch lends the engine pooled working state (from AcquireScratch)
	// so repeated runs against a cached graph do zero steady-state heap
	// allocation. A Scratch acquired for a different engine, worker count
	// or graph size class is silently ignored; nil keeps the engines'
	// allocate-per-run behavior. Results from a scratch-backed run are
	// only valid until the Scratch's next run or Release.
	Scratch *Scratch
	// Pool admits the run through a shared bounded worker pool (see
	// NewPool): the run blocks — FIFO, respecting ctx — until its worker
	// demand is free, so N concurrent ColorContext/Pipeline calls
	// sharing one Pool never oversubscribe the host. When the pool is
	// smaller than the demand the run gets the whole pool and shrinks
	// its worker count to match. Nil runs unbounded, as before.
	Pool *Pool
}

// Pool is a bounded pool of worker slots shared by concurrent coloring
// runs — the admission layer a multi-tenant coloring service sits on.
// Create one with NewPool, hand it to every run via ColorOptions.Pool
// (Pipeline's Color step passes it through), and concurrent runs queue
// FIFO for their goroutine budget instead of oversubscribing the host.
// A nil *Pool is valid and admits everything immediately.
type Pool = exec.Pool

// NewPool builds a Pool admitting at most maxWorkers concurrently held
// worker slots across all runs that share it (<=0: GOMAXPROCS).
func NewPool(maxWorkers int) *Pool { return exec.NewPool(maxWorkers) }

// Scratch is a pooled arena of engine working state — color buffers,
// bit sets, codecs, forwarding rings and counter shards — keyed by
// (engine, workers, graph size class). Acquire one per serving loop,
// pass it through ColorOptions.Scratch, and Release it when done; see
// AcquireScratch.
type Scratch = coloring.Scratch

// AcquireScratch returns a pooled (or fresh) Scratch for repeated runs
// of engine e at the given worker count on g. The worker count is
// normalized the way the engine itself normalizes it (sequential
// engines pin it to 1, parallel ones default to GOMAXPROCS and cap at
// the vertex count), so the handle matches the run. A Scratch must not
// back two runs concurrently.
func AcquireScratch(e Engine, workers int, g *Graph) *Scratch {
	return coloring.AcquireScratch(e.String(), workers, g.NumVertices())
}

// RunStats is the unified per-run statistics record every engine fills:
// rounds, conflicts found and repaired, the per-worker work split, and
// the gather's memory-path classification. Engines without a subsystem
// leave the corresponding fields zero-valued (see the field docs in
// internal/metrics).
type RunStats = metrics.RunStats

// ParallelStats is the former name of RunStats, kept for the original
// host-parallel API surface.
type ParallelStats = metrics.ParallelStats

// GatherStats classifies the blocked color-gather's neighbor reads:
// hot-tier hits under v_t, merged same-block reads, cold block loads
// and PUV-pruned tail entries — the software mirror of the paper's
// HDC/MGR/PUV counters.
type GatherStats = metrics.GatherStats

// engineOptions maps the public ColorOptions onto the registry's
// engine-independent option set.
func (opts ColorOptions) engineOptions() coloring.Options {
	return coloring.Options{
		MaxColors:         opts.MaxColors,
		Seed:              opts.Seed,
		Workers:           opts.Workers,
		DisableGather:     opts.DisableGather,
		ForceGather:       opts.ForceGather,
		HotVertices:       opts.HotVertices,
		Shards:            opts.ShardCount,
		PartitionStrategy: opts.PartitionStrategy,
		MaxResidentShards: opts.MaxResidentShards,
		Obs:               opts.Observer,
		Scratch:           opts.Scratch,
		Pool:              opts.Pool,
	}
}

// EngineSharded's partition strategies, as accepted by
// ColorOptions.PartitionStrategy and the CLIs' -partition flag.
const (
	// PartitionRanges partitions by contiguous index ranges.
	PartitionRanges = coloring.PartitionRanges
	// PartitionLabelProp refines the range partition with balanced label
	// propagation to shrink the edge cut.
	PartitionLabelProp = coloring.PartitionLabelProp
)

// ColorContext runs a software coloring engine on g under ctx and returns
// the verified proper coloring together with the engine's run statistics.
// This is the single dispatch path: every engine resolves through the
// registry, so no statistics are ever dropped and cancellation/deadlines
// on ctx abort the run promptly with ctx.Err().
func ColorContext(ctx context.Context, g *Graph, opts ColorOptions) (*Result, RunStats, error) {
	info, ok := coloring.LookupIndex(int(opts.Engine))
	if !ok {
		return nil, RunStats{}, fmt.Errorf("bitcolor: unknown engine %v", opts.Engine)
	}
	res, st, err := info.Run(ctx, g, opts.engineOptions())
	if err != nil {
		return nil, st, err
	}
	if err := coloring.Verify(g, res.Colors); err != nil {
		return nil, st, fmt.Errorf("bitcolor: engine %v produced an invalid coloring: %w", opts.Engine, err)
	}
	return res, st, nil
}

// ColorHandle runs a software coloring engine against an opened graph
// handle. It is ColorHandleContext without cancellation.
func ColorHandle(h *GraphHandle, opts ColorOptions) (*Result, RunStats, error) {
	return ColorHandleContext(context.Background(), h, opts)
}

// ColorHandleContext is the handle-aware dispatch: on a BCSR v3 handle
// it reuses the persisted partition for EngineSharded runs (the
// content-hash partition cache — partitioning time drops to zero and
// bitcolor_partition_cache_hits_total counts the hit), and with
// OutOfCore set (or a handle opened via OpenGraphFileOutOfCore) it
// streams the run under the bounded-residency executor, verifying the
// result shard by shard without ever materializing the CSR. Handles of
// every other format run exactly as ColorContext.
func ColorHandleContext(ctx context.Context, h *GraphHandle, opts ColorOptions) (*Result, RunStats, error) {
	info, ok := coloring.LookupIndex(int(opts.Engine))
	if !ok {
		return nil, RunStats{}, fmt.Errorf("bitcolor: unknown engine %v", opts.Engine)
	}
	sharded := int(opts.Engine) == int(EngineSharded)
	if opts.OutOfCore || h.OutOfCore() {
		if h.sf == nil {
			return nil, RunStats{}, fmt.Errorf("bitcolor: out-of-core coloring needs a BCSR v3 handle (this one is %s)", h.Format())
		}
		if !sharded {
			return nil, RunStats{}, fmt.Errorf("bitcolor: out-of-core coloring requires EngineSharded, not %v", opts.Engine)
		}
		o := opts.Observer
		if o == nil {
			o = obs.FromContext(ctx)
		}
		eopts := opts.engineOptions()
		eopts.OutOfCore = true
		eopts.ShardFile = h.sf
		// The engine reads adjacency exclusively through the shard file;
		// the offsets-only skeleton exists for the registry's admission
		// and instrumentation decorators, which size by vertex count.
		skel := &graph.CSR{Offsets: make([]int64, h.sf.NumVertices()+1)}
		before := h.sf.Stats()
		res, st, err := info.Run(ctx, skel, eopts)
		after := h.sf.Stats()
		o.RecordShardMap(after.Maps-before.Maps, after.Unmaps-before.Unmaps, after.PeakResidentBytes)
		if err != nil {
			return nil, st, err
		}
		if err := coloring.VerifySharded(h.sf, res.Colors); err != nil {
			return nil, st, fmt.Errorf("bitcolor: engine %v produced an invalid coloring: %w", opts.Engine, err)
		}
		return res, st, nil
	}
	g := h.Graph()
	if sharded && h.sf != nil {
		if a, name, ok := cachedPartition(h.sf, &opts); ok {
			o := opts.Observer
			if o == nil {
				o = obs.FromContext(ctx)
			}
			o.RecordPartitionCache(name)
			eopts := opts.engineOptions()
			eopts.Partition = a
			res, st, err := info.Run(ctx, g, eopts)
			if err != nil {
				return nil, st, err
			}
			if err := coloring.Verify(g, res.Colors); err != nil {
				return nil, st, fmt.Errorf("bitcolor: engine %v produced an invalid coloring: %w", opts.Engine, err)
			}
			return res, st, nil
		}
	}
	return ColorContext(ctx, g, opts)
}

// cachedPartition decides whether the handle's persisted assignment can
// stand in for partitioning this run: the requested shard count and
// strategy must match the file (unset values adopt the file's). opts is
// updated in place so the engine sees the effective configuration.
func cachedPartition(sf *graph.ShardedFile, opts *ColorOptions) (*partition.Assignment, string, bool) {
	name, err := partition.StrategyName(sf.Strategy())
	if err != nil {
		return nil, "", false
	}
	switch opts.ShardCount {
	case 0:
		opts.ShardCount = sf.Shards()
	case sf.Shards():
	default:
		return nil, "", false
	}
	switch opts.PartitionStrategy {
	case "":
		opts.PartitionStrategy = name
	case name:
	default:
		return nil, "", false
	}
	return &partition.Assignment{Parts: sf.Parts(), K: sf.Shards()}, name, true
}

// Color runs a software coloring engine on g and returns a verified
// proper coloring. It is ColorContext without cancellation and with the
// statistics dropped; use ColorContext when either matters.
func Color(g *Graph, opts ColorOptions) (*Result, error) {
	res, _, err := ColorContext(context.Background(), g, opts)
	return res, err
}

// ColorParallel runs one of the parallel engines (per the registry's
// Parallel flag: EngineJonesPlassmann, EngineSpeculative,
// EngineParallelBitwise or EngineDCT) and returns its run statistics
// alongside the verified coloring. Sequential engines are rejected; use
// Color or ColorContext for them.
func ColorParallel(g *Graph, opts ColorOptions) (*Result, ParallelStats, error) {
	return ColorParallelContext(context.Background(), g, opts)
}

// ColorParallelContext is ColorParallel under a context.
func ColorParallelContext(ctx context.Context, g *Graph, opts ColorOptions) (*Result, ParallelStats, error) {
	info, ok := coloring.LookupIndex(int(opts.Engine))
	if !ok {
		return nil, ParallelStats{}, fmt.Errorf("bitcolor: unknown engine %v", opts.Engine)
	}
	if !info.Parallel {
		return nil, ParallelStats{}, fmt.Errorf("bitcolor: engine %v is not a host-parallel engine", opts.Engine)
	}
	return ColorContext(ctx, g, opts)
}

// Verify checks that colors is a proper coloring of g.
func Verify(g *Graph, colors []uint16) error { return coloring.Verify(g, colors) }

// ImproveOptions configure Improve.
type ImproveOptions struct {
	// IteratedRounds of Culberson iterated greedy (0 skips the phase).
	IteratedRounds int
	// KempePasses of Kempe-chain top-color elimination.
	KempePasses int
	// TabuIters enables a TabuCol color-count reduction with this many
	// moves per attempted k (0 skips the phase).
	TabuIters int
	// Equitable rebalances class sizes after reduction.
	Equitable bool
	// MaxColors bounds the palette (default MaxColorsDefault).
	MaxColors int
	// Seed feeds the randomized phases.
	Seed int64
}

// Improve post-processes a proper coloring without ever increasing its
// color count: iterated greedy re-coloring, Kempe-chain elimination of
// the top color, and optional equitable rebalancing.
func Improve(g *Graph, initial *Result, opts ImproveOptions) (*Result, error) {
	return ImproveContext(context.Background(), g, initial, opts)
}

// ImproveContext is Improve under a context: the iterated-greedy rounds
// poll ctx and a cancelled run returns ctx.Err().
func ImproveContext(ctx context.Context, g *Graph, initial *Result, opts ImproveOptions) (*Result, error) {
	if err := coloring.Verify(g, initial.Colors); err != nil {
		return nil, fmt.Errorf("bitcolor: Improve needs a proper initial coloring: %w", err)
	}
	if opts.MaxColors <= 0 {
		opts.MaxColors = MaxColorsDefault
	}
	cur := initial
	if opts.IteratedRounds > 0 {
		improved, err := coloring.IteratedGreedy(ctx, g, cur, opts.IteratedRounds, opts.Seed, opts.MaxColors)
		if err != nil {
			return nil, err
		}
		cur = improved
	}
	for i := 0; i < opts.KempePasses; i++ {
		next := coloring.KempeReduce(g, cur)
		if next.NumColors == cur.NumColors {
			cur = next
			break
		}
		cur = next
	}
	if opts.TabuIters > 0 {
		cur = coloring.TabuColReduce(g, cur, opts.Seed, opts.TabuIters)
	}
	if opts.Equitable {
		cur = coloring.Equitable(g, cur, 1)
	}
	if err := coloring.Verify(g, cur.Colors); err != nil {
		return nil, fmt.Errorf("bitcolor: Improve produced an invalid coloring: %w", err)
	}
	return cur, nil
}

// DefaultSimConfig is the paper's accelerator configuration with P
// engines (power of two, up to 16 on the U200).
func DefaultSimConfig(parallelism int) SimConfig { return sim.DefaultConfig(parallelism) }

// Simulate runs the BitColor accelerator simulator on g. The graph
// should come from Preprocess; Simulate verifies the result before
// returning it.
func Simulate(g *Graph, cfg SimConfig) (*SimResult, error) { return sim.Run(g, cfg) }

// EstimateResources evaluates the FPGA resource model at the given
// parallelism (Fig 14).
func EstimateResources(parallelism int) (ResourceUsage, error) {
	return resources.DefaultModel().Estimate(parallelism)
}

// SimulateJonesPlassmann runs independent-set coloring on the BitColor
// substrate (same engines, cache and channels; synchronous rounds
// instead of the conflict table) — the §2.4 comparison point. The
// returned result carries round and edge-work counts.
func SimulateJonesPlassmann(g *Graph, cfg SimConfig, seed int64) (*sim.RoundsResult, error) {
	return sim.RunJonesPlassmann(g, cfg, seed)
}

// Dynamic maintains a proper coloring of a growing graph (streaming
// vertex/edge insertion with local repair).
type Dynamic = coloring.DynamicColoring

// NewDynamic starts an empty dynamic coloring with the given palette
// bound (<=0 uses MaxColorsDefault).
func NewDynamic(maxColors int) *Dynamic {
	return coloring.NewDynamicColoring(maxColors)
}

// SimulateBFS runs level-synchronous BFS on the BitColor substrate —
// the generality demonstration of §2.4: the high-degree cache and read
// merging apply to any per-vertex-state traversal, not just coloring.
func SimulateBFS(g *Graph, cfg SimConfig, source VertexID) (*sim.BFSResult, error) {
	return sim.RunBFS(g, cfg, source)
}
