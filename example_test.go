package bitcolor_test

import (
	"fmt"

	"bitcolor"
)

// ExampleColor colors a small scheduling conflict graph.
func ExampleColor() {
	g, _ := bitcolor.NewGraph(4, []bitcolor.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
	})
	res, _ := bitcolor.Color(g, bitcolor.ColorOptions{Engine: bitcolor.EngineBitwise})
	fmt.Println("colors used:", res.NumColors)
	// Output: colors used: 2
}

// ExampleSimulate runs the accelerator on a triangle.
func ExampleSimulate() {
	g, _ := bitcolor.NewGraph(3, []bitcolor.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
	})
	cfg := bitcolor.DefaultSimConfig(2)
	res, _ := bitcolor.Simulate(g, cfg)
	fmt.Println("colors:", res.NumColors, "proper:", bitcolor.Verify(g, res.Colors) == nil)
	// Output: colors: 3 proper: true
}

// ExampleNewDynamic maintains a coloring online.
func ExampleNewDynamic() {
	d := bitcolor.NewDynamic(8)
	a, b, c := d.AddVertex(), d.AddVertex(), d.AddVertex()
	_ = d.AddEdge(a, b)
	_ = d.AddEdge(b, c)
	_ = d.AddEdge(a, c) // closing the triangle forces a third color
	fmt.Println("colors in use:", d.NumColorsInUse())
	// Output: colors in use: 3
}
