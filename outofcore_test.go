package bitcolor

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveGraphV3RoundTrip pins the eager v3 open path: SaveGraphV3's
// output sniffs as FormatBCSR3, OpenGraphFile materializes the exact
// source CSR and exposes the persisted partition metadata, and LoadGraph
// reads the file through the copying reader too.
func TestSaveGraphV3RoundTrip(t *testing.T) {
	g, err := Generate("EF", 11)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ef.bcsr")
	if err := SaveGraphV3(path, g, 4, PartitionLabelProp); err != nil {
		t.Fatal(err)
	}
	h, err := OpenGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Format() != FormatBCSR3 {
		t.Fatalf("format = %q, want %q", h.Format(), FormatBCSR3)
	}
	if h.NumShards() != 4 || h.PartitionStrategy() != PartitionLabelProp {
		t.Fatalf("shards=%d strategy=%q", h.NumShards(), h.PartitionStrategy())
	}
	if h.OutOfCore() {
		t.Fatal("eager open reported out-of-core")
	}
	got := h.Graph()
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("materialized %d/%d, want %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.Neighbors(VertexID(v)), got.Neighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: %d vs %d neighbors", v, len(b), len(a))
		}
	}
	loaded, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != g.NumVertices() || loaded.NumEdges() != g.NumEdges() {
		t.Fatal("LoadGraph shape mismatch")
	}
}

// TestColorHandlePartitionCache pins the content-hash partition cache: a
// sharded run against a v3 handle reuses the persisted assignment (the
// cache-hit family increments and the colors are the engine's usual
// greedy-identical result), while a shard-count mismatch falls back to
// partitioning without a hit.
func TestColorHandlePartitionCache(t *testing.T) {
	g, err := Generate("EF", 12)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ef.bcsr")
	if err := SaveGraphV3(path, g, 4, PartitionRanges); err != nil {
		t.Fatal(err)
	}
	h, err := OpenGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	ref, _, err := ColorContext(context.Background(), g,
		ColorOptions{Engine: EngineSharded, ShardCount: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver()
	hits := func() int64 {
		return o.Metrics().Counter("bitcolor_partition_cache_hits_total").Value(PartitionRanges)
	}
	// Unset shard count and strategy adopt the file's: cache hit.
	res, st, err := ColorHandle(h, ColorOptions{Engine: EngineSharded, Workers: 2, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	if hits() != 1 {
		t.Fatalf("cache hits = %d, want 1", hits())
	}
	if st.Shards != 4 {
		t.Fatalf("cached run shards = %d", st.Shards)
	}
	for v := range ref.Colors {
		if res.Colors[v] != ref.Colors[v] {
			t.Fatalf("vertex %d: cached %d, fresh %d", v, res.Colors[v], ref.Colors[v])
		}
	}
	// Explicit matching count and strategy: hit again.
	if _, _, err := ColorHandle(h, ColorOptions{Engine: EngineSharded, ShardCount: 4,
		PartitionStrategy: PartitionRanges, Workers: 2, Observer: o}); err != nil {
		t.Fatal(err)
	}
	if hits() != 2 {
		t.Fatalf("cache hits = %d, want 2", hits())
	}
	// Mismatched shard count: the run still succeeds, but partitions
	// fresh — no new hit.
	if _, st, err := ColorHandle(h, ColorOptions{Engine: EngineSharded, ShardCount: 2,
		Workers: 2, Observer: o}); err != nil || st.Shards != 2 {
		t.Fatalf("mismatched run: shards=%d err=%v", st.Shards, err)
	}
	if hits() != 2 {
		t.Fatalf("cache hits after mismatch = %d, want 2", hits())
	}
	// Non-sharded engines ignore the cache entirely.
	if _, _, err := ColorHandle(h, ColorOptions{Engine: EngineBitwise, Observer: o}); err != nil {
		t.Fatal(err)
	}
	if hits() != 2 {
		t.Fatalf("cache hits after bitwise run = %d, want 2", hits())
	}
}

// TestColorHandleOutOfCore pins the end-to-end streaming path: an
// out-of-core handle colors byte-identically to the in-core engine,
// reports bounded residency, feeds the shard-map metric families, and
// rejects engines and handles the streaming executor cannot serve.
func TestColorHandleOutOfCore(t *testing.T) {
	g, err := Generate("EF", 13)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ef.bcsr")
	if err := SaveGraphV3(path, g, 4, PartitionRanges); err != nil {
		t.Fatal(err)
	}
	h, err := OpenGraphFileOutOfCore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if !h.OutOfCore() || h.NumShards() != 4 {
		t.Fatalf("outofcore=%v shards=%d", h.OutOfCore(), h.NumShards())
	}
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("Graph() on an out-of-core handle did not panic")
			}
		}()
		h.Graph()
	}()
	ref, _, err := ColorContext(context.Background(), g,
		ColorOptions{Engine: EngineSharded, ShardCount: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver()
	res, st, err := ColorHandle(h, ColorOptions{Engine: EngineSharded, Workers: 2,
		MaxResidentShards: 2, Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	for v := range ref.Colors {
		if res.Colors[v] != ref.Colors[v] {
			t.Fatalf("vertex %d: streamed %d, in-core %d", v, res.Colors[v], ref.Colors[v])
		}
	}
	if st.ResidentShards != 2 || st.PeakMappedBytes <= 0 {
		t.Fatalf("resident=%d peak=%d", st.ResidentShards, st.PeakMappedBytes)
	}
	m := o.Metrics()
	maps := m.Counter("bitcolor_shard_map_maps_total").Value("")
	unmaps := m.Counter("bitcolor_shard_map_unmaps_total").Value("")
	if maps <= 0 || maps != unmaps {
		t.Fatalf("shard map families: maps=%d unmaps=%d", maps, unmaps)
	}
	if peak := m.Gauge("bitcolor_shard_map_resident_bytes").GaugeValue(""); peak <= 0 {
		t.Fatalf("resident-bytes gauge = %v", peak)
	}
	if stats := h.ShardStats(); stats.ResidentBytes != 0 || stats.PeakResidentBytes != st.PeakMappedBytes {
		t.Fatalf("handle stats %+v vs run peak %d", stats, st.PeakMappedBytes)
	}
	// Streaming requires EngineSharded.
	if _, _, err := ColorHandle(h, ColorOptions{Engine: EngineBitwise}); err == nil ||
		!strings.Contains(err.Error(), "requires EngineSharded") {
		t.Fatalf("non-sharded out-of-core run: %v", err)
	}
	// And a v3 handle: a v2-backed handle must refuse OutOfCore.
	v2 := filepath.Join(t.TempDir(), "ef2.bcsr")
	if err := SaveGraphV2(v2, g); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenGraphFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if _, _, err := ColorHandle(h2, ColorOptions{Engine: EngineSharded, OutOfCore: true}); err == nil ||
		!strings.Contains(err.Error(), "BCSR v3") {
		t.Fatalf("v2 out-of-core run: %v", err)
	}
	// OpenGraphFileOutOfCore itself rejects non-v3 files.
	if _, err := OpenGraphFileOutOfCore(v2); err == nil || !strings.Contains(err.Error(), "BCSR v3") {
		t.Fatalf("out-of-core open of v2: %v", err)
	}
}
