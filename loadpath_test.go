package bitcolor

// Root-level load-path tests: the mapped BCSR v2 view must be
// indistinguishable, through the public API, from the copying readers —
// same adjacency bytes on every Table 3 generator, same colorings at
// every worker count — and the pooled-Scratch hot path must stay
// allocation-free all the way through ColorContext.

import (
	"context"
	"path/filepath"
	"testing"

	"bitcolor/internal/gen"
)

// TestMappedV2MatchesV1AllDatasets saves each of the ten Table 3
// generators (small variants — same generator code, reduced parameters)
// in both binary formats and checks the mapped v2 graph is
// element-identical to what the copying v1 reader produces.
func TestMappedV2MatchesV1AllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, d := range gen.SmallRegistry() {
		g, err := d.Build(1)
		if err != nil {
			t.Fatalf("%s: build: %v", d.Abbrev, err)
		}
		prepared, err := Preprocess(g)
		if err != nil {
			t.Fatalf("%s: preprocess: %v", d.Abbrev, err)
		}
		v1 := filepath.Join(dir, d.Abbrev+".v1.bcsr")
		v2 := filepath.Join(dir, d.Abbrev+".v2.bcsr")
		if err := SaveGraph(v1, prepared); err != nil {
			t.Fatalf("%s: save v1: %v", d.Abbrev, err)
		}
		if err := SaveGraphV2(v2, prepared); err != nil {
			t.Fatalf("%s: save v2: %v", d.Abbrev, err)
		}
		gv1, err := LoadGraph(v1)
		if err != nil {
			t.Fatalf("%s: load v1: %v", d.Abbrev, err)
		}
		h, err := OpenGraphFile(v2)
		if err != nil {
			t.Fatalf("%s: open v2: %v", d.Abbrev, err)
		}
		if h.Format() != FormatBCSR2 {
			t.Fatalf("%s: sniffed %q, want %q", d.Abbrev, h.Format(), FormatBCSR2)
		}
		gv2 := h.Graph()
		if len(gv2.Offsets) != len(gv1.Offsets) || len(gv2.Edges) != len(gv1.Edges) {
			t.Fatalf("%s: shape mismatch: v2 %d/%d vs v1 %d/%d",
				d.Abbrev, len(gv2.Offsets), len(gv2.Edges), len(gv1.Offsets), len(gv1.Edges))
		}
		for i, o := range gv1.Offsets {
			if gv2.Offsets[i] != o {
				t.Fatalf("%s: Offsets[%d] = %d, want %d", d.Abbrev, i, gv2.Offsets[i], o)
			}
		}
		for i, e := range gv1.Edges {
			if gv2.Edges[i] != e {
				t.Fatalf("%s: Edges[%d] = %d, want %d", d.Abbrev, i, gv2.Edges[i], e)
			}
		}
		if err := h.Close(); err != nil {
			t.Fatalf("%s: close: %v", d.Abbrev, err)
		}
	}
}

// TestMappedColoringMatchesCopied colors the same file once through the
// mapped handle and once through the copying loader, at several worker
// counts, and requires byte-identical color assignments. The dct engine
// guarantees determinism at any worker count, so any divergence here
// means the mapped view presented different adjacency data.
func TestMappedColoringMatchesCopied(t *testing.T) {
	g, err := Generate("RC", 1)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rc.bcsr")
	if err := SaveGraphV2(path, prepared); err != nil {
		t.Fatal(err)
	}
	copied, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := OpenGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	mapped := h.Graph()

	color := func(g *Graph, e Engine, workers, shards int) []uint16 {
		res, err := Color(g, ColorOptions{Engine: e, Workers: workers, ShardCount: shards})
		if err != nil {
			t.Fatalf("%v w=%d s=%d: %v", e, workers, shards, err)
		}
		return res.Colors
	}
	check := func(e Engine, workers, shards int) {
		want := color(copied, e, workers, shards)
		got := color(mapped, e, workers, shards)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v w=%d s=%d: vertex %d colored %d on mapped graph, %d on copied",
					e, workers, shards, v, got[v], want[v])
			}
		}
	}
	check(EngineBitwise, 1, 0)
	for _, w := range []int{1, 2, 4} {
		check(EngineDCT, w, 0)
	}
	// The sharded engine carries the same any-parallelism determinism
	// guarantee, so the full (shards × workers) grid must agree between
	// the mapped and copied views too.
	for _, s := range []int{1, 2, 4} {
		for _, w := range []int{1, 2, 4} {
			check(EngineSharded, w, s)
		}
	}
}

// TestColorContextZeroAllocScratch proves the public hot path — repeated
// ColorContext calls with a pooled Scratch — does zero steady-state heap
// allocations for the bitwise and dct engines at one worker. This is the
// load-once, color-many service pattern the Scratch API exists for.
func TestColorContextZeroAllocScratch(t *testing.T) {
	g, err := Generate("RC", 1)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A shared Pool is part of the serving hot path, so the zero-alloc
	// contract must hold through admission too (the uncontended
	// Acquire/Release pair is allocation-free by design).
	pool := NewPool(2)
	// EngineSharded at its ShardCount default (single shard) delegates to
	// the same sequential DCT loop, so it shares the zero-alloc contract.
	for _, e := range []Engine{EngineBitwise, EngineDCT, EngineSharded} {
		s := AcquireScratch(e, 1, prepared)
		opts := ColorOptions{Engine: e, Workers: 1, Scratch: s, Pool: pool}
		// Warm run: the first call grows the arena to the graph's size.
		if _, _, err := ColorContext(ctx, prepared, opts); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, _, err := ColorContext(ctx, prepared, opts); err != nil {
				t.Fatal(err)
			}
		})
		s.Release()
		if avg != 0 {
			t.Errorf("%v w=1 via ColorContext on pooled Scratch: %.1f allocs/run, want 0", e, avg)
		}
	}
}

// TestRegistryZeroAllocSweep walks the whole engine registry through the
// pooled path (Scratch + shared Pool, one worker). Every engine must
// accept the combination; the engines with a steady-state zero-alloc
// contract (bitwise, dct, sharded) must additionally stay at zero heap
// allocations per run, so a new engine registration cannot silently
// regress the serving hot path.
func TestRegistryZeroAllocSweep(t *testing.T) {
	// The sweep covers every engine, including the slow MIS family, so it
	// uses the small RC variant (a few thousand vertices) rather than the
	// full generator the focused zero-alloc test above exercises.
	var g *Graph
	for _, d := range gen.SmallRegistry() {
		if d.Abbrev == "RC" {
			small, err := d.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			g = small
		}
	}
	if g == nil {
		t.Fatal("small RC dataset missing from gen.SmallRegistry")
	}
	prepared, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pool := NewPool(1)
	zeroAlloc := map[Engine]bool{EngineBitwise: true, EngineDCT: true, EngineSharded: true}
	for _, e := range Engines() {
		s := AcquireScratch(e, 1, prepared)
		opts := ColorOptions{Engine: e, Workers: 1, Scratch: s, Pool: pool}
		if _, _, err := ColorContext(ctx, prepared, opts); err != nil {
			t.Errorf("%v through shared pool: %v", e, err)
			s.Release()
			continue
		}
		if zeroAlloc[e] {
			avg := testing.AllocsPerRun(10, func() {
				if _, _, err := ColorContext(ctx, prepared, opts); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("%v w=1 pooled: %.1f allocs/run, want 0", e, avg)
			}
		}
		s.Release()
	}
	if pool.InUse() != 0 || pool.Waiting() != 0 {
		t.Errorf("pool not idle after sweep: in use %d, waiting %d", pool.InUse(), pool.Waiting())
	}
}
