package bitcolor

// Root-level shared-pool tests: the colord serving pattern is N
// independent requests (each with its own graph and Observer) admitted
// through one bounded Pool. Under the race detector these tests pin
// down the two properties that pattern needs: every run stays
// deterministic no matter how admission interleaves the requests, and
// each request's observability lane (metrics registry, run ID) sees
// exactly its own runs and nothing from its neighbors.

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"testing"
)

// poolTestGraphs builds one distinct prepared graph per concurrent
// client, plus its single-worker DCT reference coloring (the engine's
// determinism contract makes that the expected output at every worker
// count and through any pool).
func poolTestGraphs(t *testing.T) ([]*Graph, [][]uint16) {
	t.Helper()
	abbrevs := []string{"RC", "GD", "CA", "CL"}
	graphs := make([]*Graph, len(abbrevs))
	refs := make([][]uint16, len(abbrevs))
	for i, a := range abbrevs {
		g, err := Generate(a, int64(i+1))
		if err != nil {
			t.Fatalf("%s: generate: %v", a, err)
		}
		prepared, err := Preprocess(g)
		if err != nil {
			t.Fatalf("%s: preprocess: %v", a, err)
		}
		ref, err := Color(prepared, ColorOptions{Engine: EngineDCT, Workers: 1})
		if err != nil {
			t.Fatalf("%s: reference run: %v", a, err)
		}
		graphs[i] = prepared
		refs[i] = ref.Colors
	}
	return graphs, refs
}

// TestSharedPoolConcurrentRuns drives four goroutines, each coloring
// its own graph repeatedly through one shared 4-slot Pool with its own
// Observer, and then checks (a) every run produced the per-graph
// reference coloring, (b) each observer counted exactly its own runs
// and its own vertices — counter lanes never bleed across concurrent
// clients of a shared pool — and (c) the pool drained back to idle.
func TestSharedPoolConcurrentRuns(t *testing.T) {
	graphs, refs := poolTestGraphs(t)
	// Cap below the aggregate demand (4 clients x 2 workers = 8) so
	// runs genuinely queue against each other.
	pool := NewPool(4)
	const reps = 5
	ctx := context.Background()
	observers := make([]*Observer, len(graphs))
	var wg sync.WaitGroup
	for i := range graphs {
		o := NewObserver()
		observers[i] = o
		wg.Add(1)
		go func(i int, o *Observer) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				res, _, err := ColorContext(ctx, graphs[i], ColorOptions{
					Engine:   EngineDCT,
					Workers:  2,
					Pool:     pool,
					Observer: o,
				})
				if err != nil {
					t.Errorf("graph %d rep %d: %v", i, r, err)
					return
				}
				for v := range refs[i] {
					if res.Colors[v] != refs[i][v] {
						t.Errorf("graph %d rep %d: vertex %d colored %d, want %d",
							i, r, v, res.Colors[v], refs[i][v])
						return
					}
				}
			}
		}(i, o)
	}
	wg.Wait()
	seen := make(map[string]int, len(observers))
	for i, o := range observers {
		m := o.Metrics()
		if got := m.Counter("bitcolor_engine_runs_total").Value("dct"); got != reps {
			t.Errorf("observer %d: %d dct runs recorded, want %d (lane cross-contamination?)", i, got, reps)
		}
		var vertices int64
		for w := 0; w < 2; w++ {
			vertices += m.Counter("bitcolor_worker_vertices_total").Value(strconv.Itoa(w))
		}
		want := int64(reps) * int64(graphs[i].NumVertices())
		if vertices != want {
			t.Errorf("observer %d: %d worker vertices recorded, want %d (lane cross-contamination?)", i, vertices, want)
		}
		if prev, dup := seen[o.RunID()]; dup {
			t.Errorf("observers %d and %d share run ID %q", prev, i, o.RunID())
		}
		seen[o.RunID()] = i
	}
	if pool.InUse() != 0 || pool.Waiting() != 0 {
		t.Errorf("pool not idle after all runs: in use %d, waiting %d", pool.InUse(), pool.Waiting())
	}
}

// TestSharedPoolShrinksWorkersDeterministically runs the DCT engine
// asking for more workers than a 1-slot pool can ever grant. Admission
// must shrink the run to the granted slot count — not block forever,
// not run unbounded — and the engine's any-worker-count determinism
// means the shrunken run still yields the reference coloring.
func TestSharedPoolShrinksWorkersDeterministically(t *testing.T) {
	graphs, refs := poolTestGraphs(t)
	pool := NewPool(1)
	res, _, err := ColorContext(context.Background(), graphs[0], ColorOptions{
		Engine:  EngineDCT,
		Workers: 4,
		Pool:    pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range refs[0] {
		if res.Colors[v] != refs[0][v] {
			t.Fatalf("vertex %d colored %d under 1-slot pool, want %d", v, res.Colors[v], refs[0][v])
		}
	}
	if pool.InUse() != 0 {
		t.Fatalf("pool holds %d slots after the run", pool.InUse())
	}
}

// TestSharedPoolCancelWhileQueued cancels a run that is parked in the
// pool's admission queue behind a slot the test never releases. The
// cancellation must surface as ctx.Err() without the engine running at
// all (no run counted on the observer) and without leaking the waiter.
func TestSharedPoolCancelWhileQueued(t *testing.T) {
	graphs, _ := poolTestGraphs(t)
	pool := NewPool(2)
	// Occupy every slot so the run below cannot be admitted.
	held, err := pool.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	o := NewObserver()
	done := make(chan error, 1)
	go func() {
		_, _, err := ColorContext(ctx, graphs[0], ColorOptions{
			Engine:   EngineDCT,
			Workers:  2,
			Pool:     pool,
			Observer: o,
		})
		done <- err
	}()
	// Wait until the run is queued, then cancel it.
	for pool.Waiting() == 0 {
		runtime.Gosched()
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("queued run returned %v, want context.Canceled", err)
	}
	if got := o.Metrics().Counter("bitcolor_engine_runs_total").Value("dct"); got != 0 {
		t.Errorf("engine ran %d times despite cancellation before admission", got)
	}
	if pool.Waiting() != 0 {
		t.Errorf("cancelled waiter leaked: %d still waiting", pool.Waiting())
	}
	pool.Release(held)
	if pool.InUse() != 0 {
		t.Errorf("pool holds %d slots after release", pool.InUse())
	}
}
