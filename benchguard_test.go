package bitcolor

// Benchmark guard: CI smoke checks (env-gated behind BITCOLOR_BENCHGUARD=1
// so ordinary `go test ./...` stays fast and flake-free) that pin two
// performance contracts of the observability layer:
//
//  1. ParallelBitwise ns/edge with a nil observer must not regress more
//     than 10% against the recorded baseline. Raw ns/edge is machine-
//     bound, so the guard compares a *ratio*: ParallelBitwise wall time
//     normalized by the sequential bitwise engine measured in the same
//     process on the same graph. Machine speed cancels; only a relative
//     slowdown of the instrumented engine moves the ratio.
//  2. A live observer must stay off the hot path: with an observer
//     attached, ns/edge may exceed the nil-observer run by at most 2%
//     (span work happens only at round boundaries).

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitcolor/internal/exec"
)

const benchGuardEnv = "BITCOLOR_BENCHGUARD"

type benchBaseline struct {
	SchemaVersion int     `json:"schema_version"`
	Note          string  `json:"note"`
	GDRatio       float64 `json:"parallelbitwise_gd_vs_bitwise_ratio"`
	DCTRatio      float64 `json:"dct_gd_vs_bitwise_ratio"`
	// E2ERatio is (mapped BCSR v2 open + color) / (warm color on the
	// resident graph) with the dct engine at one worker on GD — the
	// zero-copy load path's end-to-end overhead.
	E2ERatio float64 `json:"e2e_load_ratio"`
	// ShardRatio is sharded (shards=1, one worker) / dct (one worker) on
	// GD — the sharded entry point's dispatch overhead over the DCT loop
	// it delegates to at a single shard (should sit near 1.0).
	ShardRatio float64 `json:"shard_gd_vs_dct_ratio"`
	// ExecRatio is exec.Blocks / pre-refactor inline cursor loop on the
	// synthetic dispatch workload at one worker — the shared substrate's
	// per-block overhead (should sit near 1.0). Guarded at a tight ×1.05
	// because the workload is pure dispatch with no kernel noise.
	ExecRatio float64 `json:"exec_dispatch_ratio"`
	// OutOfCoreRatio is streamed sharded coloring (BCSR v3 handle,
	// shards=4, residency 2, one worker, cached partition) / in-core
	// sharded (same shape, partition rebuilt per run) on GD — what the
	// bounded residency window plus shard mapping costs over keeping the
	// whole graph resident.
	OutOfCoreRatio float64 `json:"outofcore_stream_vs_sharded_ratio"`
}

func loadBaseline(t *testing.T) benchBaseline {
	t.Helper()
	data, err := os.ReadFile("testdata/bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.SchemaVersion != 1 || b.GDRatio <= 0 || b.DCTRatio <= 0 || b.E2ERatio <= 0 || b.ShardRatio <= 0 || b.ExecRatio <= 0 || b.OutOfCoreRatio <= 0 {
		t.Fatalf("implausible baseline %+v", b)
	}
	return b
}

// guardGraph builds a preprocessed Table 3 stand-in for the guards.
func guardGraph(t *testing.T, abbrev string) *Graph {
	t.Helper()
	g, err := Generate(abbrev, 1)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := Preprocess(g)
	if err != nil {
		t.Fatal(err)
	}
	return prepared
}

// minTime returns the fastest of n runs of f — the standard way to
// strip scheduler noise from a wall-clock micro-measurement.
func minTime(n int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// minTimePair interleaves n runs of a and b, alternating which goes
// first each iteration, and returns the per-arm minimum. Running the
// arms back-to-back in separate phases lets slow drift (GC pacing, CPU
// frequency) masquerade as a difference between them; interleaving
// makes both arms sample the same conditions.
func minTimePair(n int, a, b func()) (minA, minB time.Duration) {
	minA, minB = time.Duration(1<<63-1), time.Duration(1<<63-1)
	time1 := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	for i := 0; i < n; i++ {
		var da, db time.Duration
		if i%2 == 0 {
			da, db = time1(a), time1(b)
		} else {
			db, da = time1(b), time1(a)
		}
		if da < minA {
			minA = da
		}
		if db < minB {
			minB = db
		}
	}
	return minA, minB
}

func TestBenchGuardParallelBitwiseRegression(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the benchmark regression guard", benchGuardEnv)
	}
	prepared := guardGraph(t, "GD")
	base := loadBaseline(t)

	bitwise := minTime(7, func() {
		if _, err := Color(prepared, ColorOptions{Engine: EngineBitwise}); err != nil {
			t.Fatal(err)
		}
	})
	parallel := minTime(9, func() {
		if _, _, err := ColorParallel(prepared, ColorOptions{
			Engine: EngineParallelBitwise, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(parallel) / float64(bitwise)
	limit := base.GDRatio * 1.10
	t.Logf("parallelbitwise %v / bitwise %v = ratio %.4f (baseline %.4f, limit %.4f)",
		parallel, bitwise, ratio, base.GDRatio, limit)
	if ratio > limit {
		t.Fatalf("ParallelBitwise regressed: ratio %.4f exceeds baseline %.4f by more than 10%%",
			ratio, base.GDRatio)
	}
}

func TestBenchGuardDCTRegression(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the benchmark regression guard", benchGuardEnv)
	}
	prepared := guardGraph(t, "GD")
	base := loadBaseline(t)

	bitwise := minTime(7, func() {
		if _, err := Color(prepared, ColorOptions{Engine: EngineBitwise}); err != nil {
			t.Fatal(err)
		}
	})
	dct := minTime(9, func() {
		if _, _, err := ColorParallel(prepared, ColorOptions{
			Engine: EngineDCT, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(dct) / float64(bitwise)
	limit := base.DCTRatio * 1.10
	t.Logf("dct %v / bitwise %v = ratio %.4f (baseline %.4f, limit %.4f)",
		dct, bitwise, ratio, base.DCTRatio, limit)
	if ratio > limit {
		t.Fatalf("DCT engine regressed: ratio %.4f exceeds baseline %.4f by more than 10%%",
			ratio, base.DCTRatio)
	}
}

// TestBenchGuardShardedRegression pins the sharded engine's single-shard
// interior path against plain DCT at one worker: shards=1 delegates to
// the same owner-computes loop, so the wall-time ratio should hold near
// 1.0 and may not drift more than 10% above the recorded baseline. The
// interleaved measurement cancels machine speed like the other guards.
func TestBenchGuardShardedRegression(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the sharded regression guard", benchGuardEnv)
	}
	prepared := guardGraph(t, "GD")
	base := loadBaseline(t)

	dct, sharded := minTimePair(9, func() {
		if _, _, err := ColorParallel(prepared, ColorOptions{
			Engine: EngineDCT, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}, func() {
		if _, _, err := ColorParallel(prepared, ColorOptions{
			Engine: EngineSharded, ShardCount: 1, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(sharded) / float64(dct)
	limit := base.ShardRatio * 1.10
	t.Logf("sharded(s=1) %v / dct %v = ratio %.4f (baseline %.4f, limit %.4f)",
		sharded, dct, ratio, base.ShardRatio, limit)
	if ratio > limit {
		t.Fatalf("sharded single-shard path regressed: ratio %.4f exceeds baseline %.4f by more than 10%%",
			ratio, base.ShardRatio)
	}
}

// TestBenchGuardExecDispatchOverhead pins the shared dispatch substrate
// against the inline cursor loops it replaced: exec.Blocks on a
// synthetic block workload at one worker may cost at most 5% more,
// relative to the hand-rolled atomic-cursor goroutine loop measured in
// the same process, than the recorded baseline ratio. The bound is
// tighter than the engine guards' 10% because the workload is pure
// dispatch — any drift here is substrate overhead, not kernel noise.
func TestBenchGuardExecDispatchOverhead(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the dispatch overhead guard", benchGuardEnv)
	}
	base := loadBaseline(t)
	const items = 1 << 21
	data := make([]uint64, items)
	for i := range data {
		data[i] = uint64(i)*0x9e3779b97f4a7c15 + 1
	}
	work := func(lo, hi int) uint64 {
		var acc uint64
		for _, x := range data[lo:hi] {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			acc += x
		}
		return acc
	}
	// Both arms run one worker so the comparison isolates per-block
	// dispatch cost from goroutine scheduling.
	var inlineSum, execSum uint64
	inline := func() {
		var cursor atomic.Int64
		var acc uint64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := cursor.Add(exec.DispatchBlock) - exec.DispatchBlock
				if lo >= items {
					break
				}
				hi := lo + exec.DispatchBlock
				if hi > items {
					hi = items
				}
				acc += work(int(lo), int(hi))
			}
		}()
		wg.Wait()
		inlineSum = acc
	}
	blocks := func() {
		var cur exec.BlockCursor
		cur.Reset(items)
		var acc uint64
		if err := exec.Blocks(context.Background(), 1, &cur, func(w, lo, hi int) error {
			acc += work(lo, hi)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		execSum = acc
	}
	// The 5% bound is tight against a ~2ms workload, so like the observer
	// guard this one retries: a single GC pause or scheduler hiccup
	// landing in the exec arm fakes a regression once, a real regression
	// fails every attempt.
	limit := base.ExecRatio * 1.05
	var ratio float64
	for attempt := 1; ; attempt++ {
		runtime.GC()
		inlineT, execT := minTimePair(9, inline, blocks)
		if inlineSum != execSum {
			t.Fatalf("checksum mismatch: inline %#x vs exec.Blocks %#x — the arms did different work", inlineSum, execSum)
		}
		ratio = float64(execT) / float64(inlineT)
		t.Logf("attempt %d: exec.Blocks %v / inline %v = ratio %.4f (baseline %.4f, limit %.4f)",
			attempt, execT, inlineT, ratio, base.ExecRatio, limit)
		if ratio <= limit || attempt == 3 {
			break
		}
	}
	if ratio > limit {
		t.Fatalf("exec dispatch overhead regressed: ratio %.4f exceeds baseline %.4f by more than 5%% on every attempt",
			ratio, base.ExecRatio)
	}
}

// TestBenchGuardE2ELoadRatio pins the zero-copy load path: opening a
// mapped BCSR v2 file and coloring it (dct, one worker) may cost at
// most 10% more, relative to a warm color on the resident graph, than
// the recorded baseline ratio. The same-process normalization cancels
// machine speed, exactly like the engine-ratio guards.
func TestBenchGuardE2ELoadRatio(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the load-path regression guard", benchGuardEnv)
	}
	prepared := guardGraph(t, "GD")
	base := loadBaseline(t)
	path := filepath.Join(t.TempDir(), "gd.bcsr")
	if err := SaveGraphV2(path, prepared); err != nil {
		t.Fatal(err)
	}
	// The guard measures the mapped path; a fallback to the copying
	// reader would silently inflate the ratio, so check once up front.
	h, err := OpenGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Mapped() {
		h.Close()
		t.Skip("mmap unavailable on this platform — the guard pins the mapped path only")
	}
	h.Close()

	color := func(g *Graph) {
		if _, _, err := ColorParallel(g, ColorOptions{Engine: EngineDCT, Workers: 1}); err != nil {
			t.Fatal(err)
		}
	}
	pure := minTime(7, func() { color(prepared) })
	cold := minTime(7, func() {
		h, err := OpenGraphFile(path)
		if err != nil {
			t.Fatal(err)
		}
		color(h.Graph())
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
	})
	ratio := float64(cold) / float64(pure)
	limit := base.E2ERatio * 1.10
	t.Logf("mapped open+color %v / warm color %v = ratio %.4f (baseline %.4f, limit %.4f)",
		cold, pure, ratio, base.E2ERatio, limit)
	if ratio > limit {
		t.Fatalf("mapped load path regressed: ratio %.4f exceeds baseline %.4f by more than 10%%",
			ratio, base.E2ERatio)
	}
}

// TestBenchGuardOutOfCoreOverhead pins the streaming executor against
// the in-core sharded engine at the same shape (shards=4, one worker)
// on GD: the streamed arm colors through a 2-shard residency window off
// a BCSR v3 handle with the cached partition, the in-core arm holds the
// whole graph resident and rebuilds the partition per run. The ratio
// may not drift more than 10% above the recorded baseline; like the
// observer guard it retries, since a GC pause landing in the mmap-heavy
// streamed arm fakes a regression once but not three times.
func TestBenchGuardOutOfCoreOverhead(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the out-of-core overhead guard", benchGuardEnv)
	}
	prepared := guardGraph(t, "GD")
	base := loadBaseline(t)
	path := filepath.Join(t.TempDir(), "gd.v3.bcsr")
	if err := SaveGraphV3(path, prepared, 4, PartitionRanges); err != nil {
		t.Fatal(err)
	}
	h, err := OpenGraphFileOutOfCore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	limit := base.OutOfCoreRatio * 1.10
	var ratio float64
	for attempt := 1; ; attempt++ {
		runtime.GC()
		incore, streamed := minTimePair(9, func() {
			if _, _, err := ColorParallel(prepared, ColorOptions{
				Engine: EngineSharded, ShardCount: 4, Workers: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}, func() {
			if _, _, err := ColorHandle(h, ColorOptions{
				Engine: EngineSharded, Workers: 1, MaxResidentShards: 2,
			}); err != nil {
				t.Fatal(err)
			}
		})
		ratio = float64(streamed) / float64(incore)
		t.Logf("attempt %d: streamed %v / in-core sharded %v = ratio %.4f (baseline %.4f, limit %.4f)",
			attempt, streamed, incore, ratio, base.OutOfCoreRatio, limit)
		if ratio <= limit || attempt == 3 {
			break
		}
	}
	if ratio > limit {
		t.Fatalf("out-of-core streaming regressed: ratio %.4f exceeds baseline %.4f by more than 10%% on every attempt",
			ratio, base.OutOfCoreRatio)
	}
}

func TestBenchGuardObserverOverhead(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the observer overhead guard", benchGuardEnv)
	}
	// The per-run instrumentation cost is a near-constant handful of
	// microseconds (one engine span, round-boundary spans, one family
	// fold) — measure on the largest-but-one stand-in (CO, ~3.8M edges,
	// ~20ms/run) so that constant and the scheduler's timeslice noise
	// are both well under the 2% bound rather than comparable to it.
	prepared := guardGraph(t, "CO")

	// One observer across iterations: the guard bounds the engine's
	// per-run instrumentation cost, not Observer construction.
	o := NewObserver()
	ctx := WithObserver(context.Background(), o)

	// A single GC pause landing inside one arm's every iteration can fake
	// a multi-percent gap, so the guard retries: a real regression fails
	// all attempts, a one-off pause doesn't.
	var overhead float64
	for attempt := 1; ; attempt++ {
		runtime.GC()
		nilObs, withObs := minTimePair(9, func() {
			if _, _, err := ColorParallel(prepared, ColorOptions{
				Engine: EngineParallelBitwise, Workers: 1,
			}); err != nil {
				t.Fatal(err)
			}
		}, func() {
			if _, _, err := ColorContext(ctx, prepared, ColorOptions{
				Engine: EngineParallelBitwise, Workers: 1,
			}); err != nil {
				t.Fatal(err)
			}
		})
		overhead = float64(withObs)/float64(nilObs) - 1
		t.Logf("attempt %d: nil observer %v, live observer %v, overhead %.2f%%",
			attempt, nilObs, withObs, 100*overhead)
		if overhead <= 0.02 || attempt == 3 {
			break
		}
	}
	if overhead > 0.02 {
		t.Fatalf("live-observer overhead %.2f%% exceeds the 2%% bound on every attempt", 100*overhead)
	}
	if o.SpanCount("engine/parallelbitwise") == 0 {
		t.Fatal("observer arm recorded no spans — the comparison measured nothing")
	}
}

// TestBenchGuardIntrospectionOverhead pins the run-registry plane's two
// cost contracts on top of the observer guard above:
//
//  1. An UNOBSERVED run through a pool pays only the admission
//     telemetry (a handful of counter bumps under the mutex the
//     admission path already holds) — bounded at 2% against the bare
//     nil-observer run, and in practice ≈0%.
//  2. An OBSERVED run — registry registration, armed live mirrors,
//     per-block atomic publishes, flight-recorder deregistration — may
//     cost at most 2% over the nil-observer run.
//
// Both arms of each pair are interleaved in-process so machine speed
// cancels; the guard retries so a one-off GC pause doesn't fake a
// regression. The observed arm must actually land in the flight
// recorder — otherwise the guard would be measuring a path that never
// engaged the registry.
func TestBenchGuardIntrospectionOverhead(t *testing.T) {
	if os.Getenv(benchGuardEnv) == "" {
		t.Skipf("set %s=1 to run the introspection overhead guard", benchGuardEnv)
	}
	prepared := guardGraph(t, "CO")
	pool := NewPool(1)
	o := NewObserver()
	ctx := WithObserver(context.Background(), o)

	nilRun := func() {
		if _, _, err := ColorParallel(prepared, ColorOptions{
			Engine: EngineParallelBitwise, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	pooledRun := func() {
		if _, _, err := ColorParallel(prepared, ColorOptions{
			Engine: EngineParallelBitwise, Workers: 1, Pool: pool,
		}); err != nil {
			t.Fatal(err)
		}
	}
	liveRun := func() {
		if _, _, err := ColorContext(ctx, prepared, ColorOptions{
			Engine: EngineParallelBitwise, Workers: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}

	recordedBefore := 0
	for _, s := range RecentRuns() {
		if s.RunID == o.RunID() {
			recordedBefore++
		}
	}

	check := func(name string, arm func(), bound float64) {
		var overhead float64
		for attempt := 1; ; attempt++ {
			runtime.GC()
			bare, instrumented := minTimePair(9, nilRun, arm)
			overhead = float64(instrumented)/float64(bare) - 1
			t.Logf("%s attempt %d: nil %v, %s %v, overhead %.2f%%",
				name, attempt, bare, name, instrumented, 100*overhead)
			if overhead <= bound || attempt == 3 {
				break
			}
		}
		if overhead > bound {
			t.Fatalf("%s overhead %.2f%% exceeds the %.0f%% bound on every attempt",
				name, 100*overhead, 100*bound)
		}
	}
	check("pooled-unobserved", pooledRun, 0.02)
	check("live-registry", liveRun, 0.02)

	recordedAfter := 0
	for _, s := range RecentRuns() {
		if s.RunID == o.RunID() {
			recordedAfter++
		}
	}
	if recordedAfter <= recordedBefore {
		t.Fatal("observed arm never reached the flight recorder — the guard measured nothing")
	}
}
