package bitcolor

// One testing.B benchmark per table and figure of the paper's evaluation
// (§5), on the reduced-size datasets so `go test -bench=.` completes in
// seconds. The full-size experiment suite with paper-style tables is
// `go run ./cmd/benchsuite`; EXPERIMENTS.md records its output against
// the paper's numbers.

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"

	"bitcolor/internal/experiments"
)

// benchCtx returns a quiet reduced-size experiment context.
func benchCtx() *experiments.Context {
	return experiments.NewSmallContext(io.Discard)
}

// BenchmarkFig3a regenerates the stage breakdown of basic greedy
// (paper Fig 3(a): 39.2% / 46.5% / 14.2%).
func BenchmarkFig3a(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3a(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.AvgStage1, "stage1_%")
	}
}

// BenchmarkFig3b regenerates the neighborhood overlap ratios
// (paper Fig 3(b): average 4.96%).
func BenchmarkFig3b(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3b(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Average, "overlap_%")
	}
}

// BenchmarkTable2 regenerates the preprocessing-vs-coloring timing
// (paper Table 2: reordering is the small fraction).
func BenchmarkTable2(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11 regenerates the single-BWPE optimization ablation
// (paper Fig 11: 88.6% DRAM / 66.9% compute / 82.9% total reduction).
func BenchmarkFig11(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.AvgTotalReduction, "total_reduction_%")
		b.ReportMetric(100*r.AvgDRAMReduction, "dram_reduction_%")
	}
}

// BenchmarkFig12 regenerates the parallel scaling sweep
// (paper Fig 12: 3.92x-7.01x at 16 BWPEs).
func BenchmarkFig12(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgP16, "avg_p16_speedup")
	}
}

// BenchmarkTable4 regenerates the color-count comparison
// (paper Table 4: 9.3% average reduction).
func BenchmarkTable4(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.AvgReduction, "color_reduction_%")
	}
}

// BenchmarkFig13 regenerates the CPU/GPU/FPGA comparison
// (paper Fig 13: 54.9x over CPU, 2.71x over GPU on average).
func BenchmarkFig13(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgSpeedupCPU, "x_vs_cpu")
		b.ReportMetric(r.AvgSpeedupGPU, "x_vs_gpu")
	}
}

// BenchmarkFig14 regenerates the resource/frequency sweep
// (paper Fig 14: 51.1% REG, 47.8% LUT, 96.7% BRAM at P16, >200 MHz).
func BenchmarkFig14(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(ctx)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Usages[len(r.Usages)-1]
		b.ReportMetric(100*last.BRAMFrac, "p16_bram_%")
	}
}

// BenchmarkCacheAblation regenerates the §4.4 multi-port cache BRAM
// comparison (proposed = 2/P of the LVT design).
func BenchmarkCacheAblation(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.CacheAblation(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[len(r.Rows)-1].Ratio, "p16_bram_ratio")
	}
}

// BenchmarkAcceleratorEndToEnd measures one full P16 simulated run on a
// GD-like social graph — the headline single-number benchmark.
func BenchmarkAcceleratorEndToEnd(b *testing.B) {
	g, err := Generate("GD", 1)
	if err != nil {
		b.Fatal(err)
	}
	prepared, err := Preprocess(g)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultSimConfig(16)
	cfg.CacheVertices = prepared.NumVertices()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(prepared, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MCVps, "simulated_MCV/s")
	}
}

// BenchmarkSoftwareBitwise measures the pure-software Algorithm 2 as a
// host-side reference point.
func BenchmarkSoftwareBitwise(b *testing.B) {
	g, err := Generate("GD", 1)
	if err != nil {
		b.Fatal(err)
	}
	prepared, err := Preprocess(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Color(prepared, ColorOptions{Engine: EngineBitwise}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelBitwise measures the host-parallel bit-wise engine
// across a worker sweep on two Table 3 stand-ins (a power-law social
// graph and a bounded-degree road network), reporting colors used and
// ns/edge so it compares directly against BenchmarkSoftwareBitwise.
func BenchmarkParallelBitwise(b *testing.B) {
	sweep := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		sweep = append(sweep, p)
	}
	for _, ds := range []string{"GD", "RC"} {
		g, err := Generate(ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		prepared, err := Preprocess(g)
		if err != nil {
			b.Fatal(err)
		}
		edges := float64(prepared.NumEdges())
		for _, w := range sweep {
			b.Run(fmt.Sprintf("%s/workers=%d", ds, w), func(b *testing.B) {
				b.ReportAllocs()
				var colors int
				for i := 0; i < b.N; i++ {
					res, _, err := ColorParallel(prepared, ColorOptions{
						Engine: EngineParallelBitwise, Workers: w,
					})
					if err != nil {
						b.Fatal(err)
					}
					colors = res.NumColors
				}
				b.ReportMetric(float64(colors), "colors")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/edges, "ns/edge")
			})
		}
	}
}

// BenchmarkParallelBitwiseObserved is BenchmarkParallelBitwise at 1
// worker with a live Observer attached — comparing its ns/edge against
// the nil-observer GD/workers=1 arm measures what the observability
// layer costs on the hot path (the benchguard_test.go guard bounds it
// at 2%).
func BenchmarkParallelBitwiseObserved(b *testing.B) {
	g, err := Generate("GD", 1)
	if err != nil {
		b.Fatal(err)
	}
	prepared, err := Preprocess(g)
	if err != nil {
		b.Fatal(err)
	}
	edges := float64(prepared.NumEdges())
	o := NewObserver()
	ctx := WithObserver(context.Background(), o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ColorContext(ctx, prepared, ColorOptions{
			Engine: EngineParallelBitwise, Workers: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/edges, "ns/edge")
	b.ReportMetric(float64(o.SpanCount("round"))/float64(b.N), "round_spans/run")
}

// BenchmarkParallelBitwiseNoGather is the memory-path ablation arm of
// BenchmarkParallelBitwise: the same engine at 1 worker with the blocked
// color-gather and PUV pruning disabled, so the two benchmarks bracket
// what the software MGR/HDC/PUV path is worth.
func BenchmarkParallelBitwiseNoGather(b *testing.B) {
	for _, ds := range []string{"GD", "RC"} {
		g, err := Generate(ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		prepared, err := Preprocess(g)
		if err != nil {
			b.Fatal(err)
		}
		edges := float64(prepared.NumEdges())
		b.Run(ds, func(b *testing.B) {
			b.ReportAllocs()
			var colors int
			for i := 0; i < b.N; i++ {
				res, _, err := ColorParallel(prepared, ColorOptions{
					Engine: EngineParallelBitwise, Workers: 1, DisableGather: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				colors = res.NumColors
			}
			b.ReportMetric(float64(colors), "colors")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/edges, "ns/edge")
		})
	}
}

// BenchmarkPreprocessParallel measures the parallel preprocessing
// pipeline (CSR build + DBG relabel) against its sequential form.
func BenchmarkPreprocessParallel(b *testing.B) {
	g, err := Generate("GD", 1)
	if err != nil {
		b.Fatal(err)
	}
	var edges []Edge
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if VertexID(v) < u {
				edges = append(edges, Edge{U: VertexID(v), V: u})
			}
		}
	}
	sweep := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		sweep = append(sweep, p)
	}
	for _, w := range sweep {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				built, err := NewGraphParallel(g.NumVertices(), edges, w)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Preprocess(built, WithPreprocessParallelism(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenerality regenerates the §2.4 same-substrate comparison.
func BenchmarkGenerality(b *testing.B) {
	ctx := benchCtx()
	ctx.Datasets = ctx.Datasets[:4]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Generality(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgSpeedup, "greedy_over_jp")
	}
}

// BenchmarkRelaxedDispatch regenerates the dispatch-discipline ablation.
func BenchmarkRelaxedDispatch(b *testing.B) {
	ctx := benchCtx()
	ctx.Datasets = ctx.Datasets[:4]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Relaxed(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiCard regenerates the scale-out extension study.
func BenchmarkMultiCard(b *testing.B) {
	ctx := benchCtx()
	ctx.Datasets = ctx.Datasets[:4]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MultiCard(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSweep regenerates the HVC capacity sensitivity.
func BenchmarkCacheSweep(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CacheSweep(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLRUvsHDC regenerates the §3.2.2 cache-policy comparison.
func BenchmarkLRUvsHDC(b *testing.B) {
	ctx := benchCtx()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LRUvsHDC(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
