package bitcolor

import (
	"context"
	"errors"
	"testing"
	"time"
)

func pipelineGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Generate("EF", 21)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func stageNames(pr *PipelineResult) []string {
	names := make([]string, len(pr.Stages))
	for i, s := range pr.Stages {
		names[i] = s.Name
	}
	return names
}

func TestPipelineRunStages(t *testing.T) {
	g := pipelineGraph(t)
	pr, err := Pipeline{Color: ColorOptions{Engine: EngineBitwise}}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"preprocess", "color", "verify"}
	got := stageNames(pr)
	if len(got) != len(want) {
		t.Fatalf("stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages = %v, want %v", got, want)
		}
	}
	var sum time.Duration
	for _, s := range pr.Stages {
		if s.Duration < 0 {
			t.Fatalf("stage %s has negative duration", s.Name)
		}
		sum += s.Duration
	}
	if pr.Total != sum {
		t.Fatalf("Total %v != stage sum %v", pr.Total, sum)
	}
	// The result must be proper on the ORIGINAL graph — the permutation
	// was undone.
	if err := Verify(g, pr.Result.Colors); err != nil {
		t.Fatal(err)
	}
	if pr.StageDuration("color") != pr.Stages[1].Duration {
		t.Fatal("StageDuration lookup broken")
	}
	if pr.StageDuration("nope") != 0 {
		t.Fatal("StageDuration invented a stage")
	}
}

// TestPipelineUnpermutation pins the color mapping: the pipeline must
// return exactly the colors a manual preprocess + color + un-permute
// produces.
func TestPipelineUnpermutation(t *testing.T) {
	g := pipelineGraph(t)
	pr, err := Pipeline{Color: ColorOptions{Engine: EngineBitwise}}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	prepared, perm, err := PreprocessWithPermutation(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Color(prepared, ColorOptions{Engine: EngineBitwise})
	if err != nil {
		t.Fatal(err)
	}
	for old, newID := range perm {
		if pr.Result.Colors[old] != res.Colors[newID] {
			t.Fatalf("vertex %d: pipeline color %d, manual un-permute %d",
				old, pr.Result.Colors[old], res.Colors[newID])
		}
	}
}

func TestPipelineSkipPreprocess(t *testing.T) {
	g := pipelineGraph(t)
	pr, err := Pipeline{SkipPreprocess: true, Color: ColorOptions{Engine: EngineGreedy}}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	got := stageNames(pr)
	if len(got) != 2 || got[0] != "color" || got[1] != "verify" {
		t.Fatalf("stages = %v, want [color verify]", got)
	}
	direct, err := Color(g, ColorOptions{Engine: EngineGreedy})
	if err != nil {
		t.Fatal(err)
	}
	for v := range direct.Colors {
		if pr.Result.Colors[v] != direct.Colors[v] {
			t.Fatalf("vertex %d: pipeline %d vs direct %d", v, pr.Result.Colors[v], direct.Colors[v])
		}
	}
}

func TestPipelineImproveStage(t *testing.T) {
	g := pipelineGraph(t)
	pr, err := Pipeline{
		Color:   ColorOptions{Engine: EngineBitwise},
		Improve: ImproveOptions{IteratedRounds: 3, Seed: 5},
	}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	got := stageNames(pr)
	if len(got) != 4 || got[2] != "improve" {
		t.Fatalf("stages = %v, want improve third", got)
	}
	if err := Verify(g, pr.Result.Colors); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineStatsSurface proves the stats-discard bug is gone: a
// parallel engine's run statistics come back through the pipeline (and
// through ColorContext) instead of being silently dropped.
func TestPipelineStatsSurface(t *testing.T) {
	g := pipelineGraph(t)
	pr, err := Pipeline{
		Color: ColorOptions{Engine: EngineParallelBitwise, Workers: 3},
	}.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Stats.Workers != 3 || pr.Stats.Rounds < 1 {
		t.Fatalf("parallel stats lost through the pipeline: %+v", pr.Stats)
	}

	res, st, err := ColorContext(context.Background(), g, ColorOptions{Engine: EngineSpeculative, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.Workers != 2 || st.Rounds < 1 {
		t.Fatalf("ColorContext dropped stats: %+v", st)
	}
}

// TestPipelineCancelReturnsPartial asserts a cancelled pipeline reports
// the stages completed so far rather than dying with nothing.
func TestPipelineCancelReturnsPartial(t *testing.T) {
	g := pipelineGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr, err := Pipeline{Color: ColorOptions{Engine: EngineBitwise}}.Run(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if pr == nil {
		t.Fatal("no partial result on cancellation")
	}
	if pr.Result != nil {
		t.Fatal("cancelled pipeline returned a full result")
	}
}

// TestColorContextCancelEveryEngine is the API-level acceptance check:
// every registered engine must surface ctx.Err() through ColorContext on
// a pre-cancelled context.
func TestColorContextCancelEveryEngine(t *testing.T) {
	g := pipelineGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range Engines() {
		_, _, err := ColorContext(ctx, g, ColorOptions{Engine: e, Workers: 2})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: want context.Canceled, got %v", e, err)
		}
	}
}

// TestColorParallelRegistryGating checks ColorParallel's accept/reject
// set now derives from the registry's Parallel flag.
func TestColorParallelRegistryGating(t *testing.T) {
	g := pipelineGraph(t)
	res, st, err := ColorParallel(g, ColorOptions{Engine: EngineJonesPlassmann, Workers: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if st.Workers < 1 || st.Rounds < 1 {
		t.Fatalf("JP stats missing: %+v", st)
	}
	if _, _, err := ColorParallel(g, ColorOptions{Engine: EngineLubyMIS}); err == nil {
		t.Fatal("ColorParallel accepted a sequential engine")
	}
}

// TestEngineInfoMetadata spot-checks the registry metadata surfaced on
// the public Engine type.
func TestEngineInfoMetadata(t *testing.T) {
	info, ok := EngineParallelBitwise.Info()
	if !ok || !info.Parallel || info.Name != "parallelbitwise" {
		t.Fatalf("EngineParallelBitwise.Info() = %+v, %v", info, ok)
	}
	if _, ok := Engine(999).Info(); ok {
		t.Fatal("bogus engine has Info")
	}
	names := EngineNames()
	if len(names) != len(Engines()) {
		t.Fatalf("EngineNames length %d vs Engines %d", len(names), len(Engines()))
	}
}
