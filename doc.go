// Package bitcolor is a pure-Go reproduction of BitColor (Fan et al.,
// ICPP 2023): an FPGA accelerator for large-scale greedy graph coloring
// built on parallel bit-wise processing engines.
//
// The package offers three levels of use:
//
//   - Software coloring. Color runs any of the implemented algorithms —
//     the paper's basic greedy (Algorithm 1) and bit-wise greedy
//     (Algorithm 2), plus DSATUR, Welsh–Powell, smallest-last,
//     Jones–Plassmann and Luby-MIS baselines — on a CSR graph. The
//     host-parallel engines (EngineSpeculative and EngineParallelBitwise,
//     the latter fusing the bit-wise first-fit into speculative
//     multicore coloring with in-place conflict repair) run via
//     ColorParallel, which also reports rounds, conflicts and the
//     per-worker work split.
//
//   - Accelerator simulation. Simulate runs the full BitColor design on
//     a cycle-approximate discrete-event model: parallel BWPEs, the
//     multi-port high-degree vertex cache, per-engine DRAM channels with
//     read merging, the data conflict table and the degree-aware task
//     dispatcher. Every paper optimization (HDC, BWC, MGR, PUV) can be
//     toggled.
//
//   - Evaluation. The cmd/benchsuite binary and the benchmarks in
//     bench_test.go regenerate every table and figure of the paper's
//     evaluation section; EXPERIMENTS.md records paper-vs-measured.
//
// A minimal session:
//
//	g, _ := bitcolor.Generate("GD", 1)          // synthetic gemsec-Deezer stand-in
//	g, _ = bitcolor.Preprocess(g)               // DBG reorder + edge sort
//	res, _ := bitcolor.Simulate(g, bitcolor.DefaultSimConfig(16))
//	fmt.Println(res.NumColors, res.TotalCycles, res.MCVps)
package bitcolor
