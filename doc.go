// Package bitcolor is a pure-Go reproduction of BitColor (Fan et al.,
// ICPP 2023): an FPGA accelerator for large-scale greedy graph coloring
// built on parallel bit-wise processing engines.
//
// The package offers three levels of use:
//
//   - Software coloring. Color runs any of the registered engines —
//     the paper's basic greedy (Algorithm 1) and bit-wise greedy
//     (Algorithm 2), plus DSATUR, Welsh–Powell, smallest-last,
//     Jones–Plassmann, Luby-MIS, RLF and two speculative multicore
//     engines (EngineParallelBitwise fuses the bit-wise first-fit into
//     speculative coloring with in-place conflict repair) — on a CSR
//     graph. All engines share one registry contract: ColorContext
//     takes a context.Context (cancellation is honored mid-run) and
//     returns RunStats (rounds, conflicts, work split, gather counters)
//     alongside the result. Pipeline composes
//     Preprocess → Color → Improve → Verify with per-stage timings and
//     returns colors in the original vertex IDs.
//
//   - Accelerator simulation. Simulate runs the full BitColor design on
//     a cycle-approximate discrete-event model: parallel BWPEs, the
//     multi-port high-degree vertex cache, per-engine DRAM channels with
//     read merging, the data conflict table and the degree-aware task
//     dispatcher. Every paper optimization (HDC, BWC, MGR, PUV) can be
//     toggled.
//
//   - Evaluation. The cmd/benchsuite binary and the benchmarks in
//     bench_test.go regenerate every table and figure of the paper's
//     evaluation section; EXPERIMENTS.md records paper-vs-measured.
//
// A minimal session:
//
//	g, _ := bitcolor.Generate("GD", 1)          // synthetic gemsec-Deezer stand-in
//	g, _ = bitcolor.Preprocess(g)               // DBG reorder + edge sort
//	res, _ := bitcolor.Simulate(g, bitcolor.DefaultSimConfig(16))
//	fmt.Println(res.NumColors, res.TotalCycles, res.MCVps)
package bitcolor
